package rpm

import (
	"strings"
	"testing"
)

func TestDatabaseInstallQuery(t *testing.T) {
	db := NewDatabase()
	db.Install(Metadata{Name: "ssh", Version: v("2.9p2", "12"), Arch: ArchI386})
	m, ok := db.Query("ssh")
	if !ok || m.Version.Version != "2.9p2" {
		t.Fatalf("Query = %+v, %v", m, ok)
	}
	if _, ok := db.Query("telnetd"); ok {
		t.Error("Query found a package that was never installed")
	}
}

func TestDatabaseUpgradeReplaces(t *testing.T) {
	db := NewDatabase()
	db.Install(Metadata{Name: "glibc", Version: v("2.2.4", "13"), Arch: ArchI386})
	db.Install(Metadata{Name: "glibc", Version: v("2.2.4", "24"), Arch: ArchI386})
	if db.Len() != 1 {
		t.Fatalf("Len = %d after upgrade, want 1", db.Len())
	}
	m, _ := db.Query("glibc")
	if m.Version.Release != "24" {
		t.Errorf("upgrade did not replace: %v", m.Version)
	}
}

func TestDatabaseErase(t *testing.T) {
	db := NewDatabase()
	db.Install(Metadata{Name: "a", Version: v("1", "1")})
	if !db.Erase("a") || db.Erase("a") {
		t.Error("Erase semantics wrong")
	}
	if db.Len() != 0 {
		t.Error("database not empty after erase")
	}
}

func TestDatabaseManifestSortedAndStable(t *testing.T) {
	db := NewDatabase()
	db.Install(Metadata{Name: "zsh", Version: v("3.0.8", "8"), Arch: ArchI386})
	db.Install(Metadata{Name: "bash", Version: v("2.05", "8"), Arch: ArchI386})
	m := db.Manifest()
	want := "bash-2.05-8.i386\nzsh-3.0.8-8.i386\n"
	if m != want {
		t.Errorf("Manifest = %q, want %q", m, want)
	}
	if m != db.Manifest() {
		t.Error("Manifest not stable across calls")
	}
}

func TestDatabaseDiff(t *testing.T) {
	a := NewDatabase()
	b := NewDatabase()
	a.Install(Metadata{Name: "only-a", Version: v("1", "1"), Arch: ArchI386})
	a.Install(Metadata{Name: "shared", Version: v("1.0", "1"), Arch: ArchI386})
	b.Install(Metadata{Name: "shared", Version: v("1.0", "2"), Arch: ArchI386})
	b.Install(Metadata{Name: "only-b", Version: v("1", "1"), Arch: ArchI386})

	removed, added, changed := a.Diff(b)
	if len(removed) != 1 || removed[0] != "only-a-1-1.i386" {
		t.Errorf("removed = %v", removed)
	}
	if len(added) != 1 || added[0] != "only-b-1-1.i386" {
		t.Errorf("added = %v", added)
	}
	if len(changed) != 1 || !strings.HasPrefix(changed[0], "shared ") {
		t.Errorf("changed = %v", changed)
	}
}

func TestDatabaseDiffEmptyMeansConsistent(t *testing.T) {
	a := NewDatabase()
	b := NewDatabase()
	for _, m := range []Metadata{
		{Name: "x", Version: v("1", "1"), Arch: ArchI386},
		{Name: "y", Version: v("2", "1"), Arch: ArchI386},
	} {
		a.Install(m)
		b.Install(m)
	}
	removed, added, changed := a.Diff(b)
	if len(removed)+len(added)+len(changed) != 0 {
		t.Errorf("identical databases should diff empty: %v %v %v", removed, added, changed)
	}
}

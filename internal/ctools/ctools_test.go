package ctools

import (
	"strings"
	"testing"

	"rocks/internal/clusterdb"
	"rocks/internal/hardware"
	"rocks/internal/node"
	"rocks/internal/rexec"
)

// testCluster builds the paper's Table II database plus live nodes for the
// compute entries and the web server.
func testCluster(t *testing.T) (*clusterdb.Database, map[string]*node.Node) {
	t.Helper()
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		t.Fatal(err)
	}
	clusterdb.AddMembership(db, "NFS", 7, false) // id 7
	clusterdb.AddMembership(db, "Web", 8, false) // id 8
	macs := hardware.NewMACAllocator()
	nodes := map[string]*node.Node{}
	mk := func(name string, membership, rack, rank int, ip string, up bool) {
		n := node.New(hardware.PIIICompute(macs, 733))
		n.SetName(name)
		n.SetIP(ip)
		if up {
			n.SetState(node.StateUp)
		}
		nodes[name] = n
		if _, err := clusterdb.InsertNode(db, clusterdb.Node{
			MAC: n.MAC(), Name: name, Membership: membership,
			Rack: rack, Rank: rank, IP: ip,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("frontend-0", clusterdb.MembershipFrontend, 0, 0, "10.1.1.1", true)
	mk("compute-0-0", clusterdb.MembershipCompute, 0, 0, "10.255.255.245", true)
	mk("compute-0-1", clusterdb.MembershipCompute, 0, 1, "10.255.255.244", true)
	mk("compute-0-2", clusterdb.MembershipCompute, 0, 2, "10.255.255.243", true)
	mk("compute-0-3", clusterdb.MembershipCompute, 0, 3, "10.255.255.242", false) // down
	mk("web-1-0", 8, 1, 0, "10.255.255.246", true)
	return db, nodes
}

func lookupFor(nodes map[string]*node.Node) Lookup {
	return func(host string) (rexec.Executor, bool) {
		n, ok := nodes[host]
		return n, ok
	}
}

func TestForkDefaultQueryHitsComputeNodesOnly(t *testing.T) {
	db, nodes := testCluster(t)
	results, err := Fork(db, lookupFor(nodes), "", "hostname")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("default query selected %d hosts, want the 4 compute nodes", len(results))
	}
	for i, r := range results {
		if !strings.HasPrefix(r.Host, "compute-0-") {
			t.Errorf("host %d = %s", i, r.Host)
		}
	}
	// compute-0-3 is down: its result carries the error, others succeed.
	if results[3].Err == nil {
		t.Error("down node reported success")
	}
	if results[0].Err != nil || results[0].Output != "compute-0-0\n" {
		t.Errorf("up node result = %+v", results[0])
	}
}

// TestClusterKillByRack runs the paper's first example: kill the runaway
// only in cabinet 1.
func TestClusterKillByRack(t *testing.T) {
	db, nodes := testCluster(t)
	nodes["web-1-0"].StartProcess("bad-job")
	nodes["compute-0-0"].StartProcess("bad-job") // different rack: must survive

	results, killed, err := Kill(db, lookupFor(nodes),
		`select name from nodes where rack=1`, "bad-job")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Host != "web-1-0" {
		t.Fatalf("results = %+v", results)
	}
	if killed != 1 {
		t.Errorf("killed = %d, want 1", killed)
	}
	if len(nodes["compute-0-0"].Processes()) != 1 {
		t.Error("cluster-kill leaked outside the rack=1 query")
	}
}

// TestClusterKillMembershipJoin runs the paper's multi-table join example
// verbatim.
func TestClusterKillMembershipJoin(t *testing.T) {
	db, nodes := testCluster(t)
	for _, name := range []string{"compute-0-0", "compute-0-1", "web-1-0", "frontend-0"} {
		nodes[name].StartProcess("bad-job")
	}
	query := `select nodes.name from nodes,memberships where \
		nodes.membership = memberships.id and \
		memberships.name = 'Compute'`
	_, killed, err := Kill(db, lookupFor(nodes), query, "bad-job")
	if err != nil {
		t.Fatal(err)
	}
	if killed != 2 {
		t.Errorf("killed = %d, want 2 (only compute nodes)", killed)
	}
	if len(nodes["web-1-0"].Processes()) != 1 || len(nodes["frontend-0"].Processes()) != 1 {
		t.Error("kill touched non-compute nodes")
	}
}

func TestForkBadQuery(t *testing.T) {
	db, nodes := testCluster(t)
	if _, err := Fork(db, lookupFor(nodes), "select from", "hostname"); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := Fork(db, lookupFor(nodes), "DELETE FROM nodes", "hostname"); err == nil {
		t.Error("mutating query accepted")
	}
}

func TestForkUnknownHost(t *testing.T) {
	db, nodes := testCluster(t)
	clusterdb.InsertNode(db, clusterdb.Node{MAC: "gh:os:t", Name: "compute-9-9",
		Membership: clusterdb.MembershipCompute, Rack: 9, Rank: 9, IP: "10.9.9.9"})
	results, err := Fork(db, lookupFor(nodes), "", "hostname")
	if err != nil {
		t.Fatal(err)
	}
	var ghost *HostResult
	for i := range results {
		if results[i].Host == "compute-9-9" {
			ghost = &results[i]
		}
	}
	if ghost == nil || ghost.Err == nil {
		t.Errorf("ghost node should error: %+v", ghost)
	}
}

func TestFormat(t *testing.T) {
	db, nodes := testCluster(t)
	results, _ := Fork(db, lookupFor(nodes), `select name from nodes where name = 'compute-0-0' or name = 'compute-0-3' order by name`, "hostname")
	out := Format(results)
	if !strings.Contains(out, "compute-0-0: compute-0-0") {
		t.Errorf("Format = %q", out)
	}
	if !strings.Contains(out, "compute-0-3: ERROR") {
		t.Errorf("Format should mark the down node: %q", out)
	}
}

func TestGroupFormatCollapsesIdenticalOutput(t *testing.T) {
	db, nodes := testCluster(t)
	// Most nodes report "killed 0"; the one with a stale job differs.
	nodes["compute-0-1"].StartProcess("stale-job")
	results, err := Fork(db, lookupFor(nodes),
		`select name from nodes where name like 'compute-0-_' and name != 'compute-0-3' order by name`,
		"kill stale-job")
	if err != nil {
		t.Fatal(err)
	}
	out := GroupFormat(results)
	if !strings.Contains(out, "2 host(s): compute-0-0 compute-0-2") {
		t.Errorf("majority group missing:\n%s", out)
	}
	if !strings.Contains(out, "1 host(s): compute-0-1") {
		t.Errorf("odd one out not isolated:\n%s", out)
	}
	// Down nodes group by their error.
	results, _ = Fork(db, lookupFor(nodes), "", "kill stale-job")
	out = GroupFormat(results)
	if !strings.Contains(out, "[ERROR]") {
		t.Errorf("error group missing:\n%s", out)
	}
}

// Package ctools implements the SQL-driven cluster tools of §6.4:
// cluster-fork runs a command on the set of nodes an arbitrary SQL query
// returns, and cluster-kill is the paper's worked example — killing a
// runaway job on exactly the nodes a query (including multi-table joins)
// selects. The brute-force "every hostname matching compute-*" approach the
// paper retired is available as the default query for comparison.
package ctools

import (
	"fmt"
	"strings"
	"sync"

	"rocks/internal/clusterdb"
	"rocks/internal/rexec"
)

// DefaultQuery selects every compute node via the memberships join — what
// cluster tools do when the user passes no --query.
const DefaultQuery = `SELECT nodes.name FROM nodes, memberships ` +
	`WHERE nodes.membership = memberships.id AND memberships.compute = 'yes' ` +
	`ORDER BY nodes.id`

// Lookup resolves a hostname to something that can execute commands; it
// reports false for hosts that are down or unknown.
type Lookup func(host string) (rexec.Executor, bool)

// HostResult is the outcome of a command on one host.
type HostResult struct {
	Host   string
	Output string
	Err    error
}

// Fork runs cmd on every host the query selects, concurrently, returning
// results in query order. A host that is down yields a HostResult carrying
// the error rather than aborting the sweep — the §3.2 "was node X offline?"
// question gets answered per host.
func Fork(db *clusterdb.Database, lookup Lookup, query, cmd string) ([]HostResult, error) {
	if query == "" {
		query = DefaultQuery
	}
	res, err := db.Query(query)
	if err != nil {
		return nil, fmt.Errorf("ctools: query failed: %w", err)
	}
	hosts := res.Strings()
	results := make([]HostResult, len(hosts))
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			results[i].Host = host
			ex, ok := lookup(host)
			if !ok {
				results[i].Err = fmt.Errorf("ctools: %s is down", host)
				return
			}
			out, err := ex.Exec(cmd)
			results[i].Output = out
			results[i].Err = err
		}(i, h)
	}
	wg.Wait()
	return results, nil
}

// Kill is cluster-kill: terminate a named process on the selected nodes.
// It returns the per-host results and the total number of processes killed.
func Kill(db *clusterdb.Database, lookup Lookup, query, process string) ([]HostResult, int, error) {
	results, err := Fork(db, lookup, query, "kill "+process)
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for _, r := range results {
		if r.Err == nil {
			var n int
			fmt.Sscanf(r.Output, "killed %d", &n)
			total += n
		}
	}
	return results, total, nil
}

// Format renders fork results the way the CLI prints them: host-prefixed
// lines, errors marked.
func Format(results []HostResult) string {
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(&b, "%s: ERROR: %v\n", r.Host, r.Err)
			continue
		}
		out := strings.TrimRight(r.Output, "\n")
		if out == "" {
			fmt.Fprintf(&b, "%s:\n", r.Host)
			continue
		}
		for _, line := range strings.Split(out, "\n") {
			fmt.Fprintf(&b, "%s: %s\n", r.Host, line)
		}
	}
	return b.String()
}

// GroupFormat renders fork results with identical outputs collapsed — the
// readable form for large clusters, where 31 nodes usually say the same
// thing and the one that differs is the interesting one.
func GroupFormat(results []HostResult) string {
	type group struct {
		hosts []string
		body  string
		isErr bool
	}
	index := map[string]*group{}
	var order []*group
	for _, r := range results {
		body := r.Output
		isErr := false
		if r.Err != nil {
			body = r.Err.Error()
			isErr = true
		}
		key := fmt.Sprintf("%v\x00%s", isErr, body)
		g, ok := index[key]
		if !ok {
			g = &group{body: body, isErr: isErr}
			index[key] = g
			order = append(order, g)
		}
		g.hosts = append(g.hosts, r.Host)
	}
	var b strings.Builder
	for _, g := range order {
		label := fmt.Sprintf("%d host(s): %s", len(g.hosts), strings.Join(g.hosts, " "))
		if g.isErr {
			label += "  [ERROR]"
		}
		b.WriteString(label)
		b.WriteByte('\n')
		body := strings.TrimRight(g.body, "\n")
		if body == "" {
			b.WriteString("  (no output)\n")
			continue
		}
		for _, line := range strings.Split(body, "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}

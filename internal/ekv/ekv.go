// Package ekv implements eKV, "Ethernet Keyboard and Video" (§6.3): the
// Rocks modification to the installer that captures its standard output and
// presents it on a telnet-compatible TCP port, so an administrator can
// watch — and interact with — a Kickstart installation from a remote xterm
// (Figure 7) instead of wheeling a crash cart to the node.
//
// The Server is an io.Writer the installer writes its screen to; any number
// of clients may attach over TCP, receive the accumulated screen followed
// by live output, and send keystroke lines back, which the installer reads
// from Input().
package ekv

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Server is one node's eKV endpoint, alive for the duration of an
// installation.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	screen  bytes.Buffer
	clients map[net.Conn]struct{}
	closed  bool

	input chan string
}

// NewServer starts an eKV listener on an ephemeral loopback port (real
// Rocks uses a fixed telnet-compatible port per node; our nodes share one
// host, so each gets its own port).
func NewServer() (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("ekv: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		clients: make(map[net.Conn]struct{}),
		input:   make(chan string, 64),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the dialable address of the eKV port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Write implements io.Writer: output is appended to the screen transcript
// and mirrored to every attached client.
func (s *Server) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("ekv: server closed")
	}
	s.screen.Write(p)
	for c := range s.clients {
		// Best effort: a stuck client must not stall the installer.
		c.SetWriteDeadline(time.Now().Add(time.Second))
		if _, err := c.Write(p); err != nil {
			c.Close()
			delete(s.clients, c)
		}
	}
	return len(p), nil
}

// Printf is a convenience formatter over Write.
func (s *Server) Printf(format string, args ...interface{}) {
	fmt.Fprintf(s, format, args...)
}

// Screen returns the accumulated transcript.
func (s *Server) Screen() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.screen.String()
}

// Input returns the channel of lines typed by attached clients — the
// "keyboard" half of eKV, which lets a user interact with a wedged
// installation.
func (s *Server) Input() <-chan string { return s.input }

// AwaitLine blocks for the next keyboard line from any attached client,
// bounded by both the context and the timeout. ok is false when the wait
// expired or was cancelled before a line arrived.
func (s *Server) AwaitLine(ctx context.Context, timeout time.Duration) (line string, ok bool) {
	if timeout <= 0 {
		return "", false
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case line = <-s.input:
		return line, true
	case <-t.C:
		return "", false
	case <-ctx.Done():
		return "", false
	}
}

// Close shuts the listener and all client connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.clients {
		c.Close()
	}
	s.clients = nil
	s.mu.Unlock()
	s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		// Replay the accumulated screen so a late attach (shoot-node
		// popping its xterm after the install started) still sees history.
		backlog := s.screen.Bytes()
		conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
		conn.Write(backlog)
		conn.SetWriteDeadline(time.Time{})
		s.clients[conn] = struct{}{}
		s.mu.Unlock()
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		select {
		case s.input <- line:
		default: // drop keystrokes nobody is reading
		}
	}
	s.mu.Lock()
	if !s.closed {
		delete(s.clients, conn)
	}
	s.mu.Unlock()
	conn.Close()
}

// Client is an attached eKV viewer — the programmatic stand-in for the
// xterm shoot-node pops open.
type Client struct {
	conn net.Conn
	mu   sync.Mutex
	buf  bytes.Buffer
	done chan struct{}
}

// Attach dials a node's eKV port and begins capturing its screen.
func Attach(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ekv: attach %s: %w", addr, err)
	}
	c := &Client{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				c.mu.Lock()
				c.buf.Write(buf[:n])
				c.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	return c, nil
}

// Done is closed when the server side hangs up (the node rebooted).
func (c *Client) Done() <-chan struct{} { return c.done }

// Screen returns everything captured so far.
func (c *Client) Screen() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// WaitFor polls until the captured screen contains substr or the timeout
// elapses.
func (c *Client) WaitFor(substr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if strings.Contains(c.Screen(), substr) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-c.done:
			// Connection closed; one final check.
			return strings.Contains(c.Screen(), substr)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Send transmits one input line to the installer (the "keyboard").
func (c *Client) Send(line string) error {
	_, err := io.WriteString(c.conn, line+"\n")
	return err
}

// Close detaches the client.
func (c *Client) Close() { c.conn.Close() }

package ekv

import (
	"strings"
	"testing"
	"time"
)

func TestScreenMirroredToClient(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Attach(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s.Printf("Package Installation\n")
	s.Printf("Name   : dev-3.0.6-5\n")
	if !c.WaitFor("dev-3.0.6-5", 2*time.Second) {
		t.Fatalf("client never saw output; screen=%q", c.Screen())
	}
	if s.Screen() != "Package Installation\nName   : dev-3.0.6-5\n" {
		t.Errorf("server transcript = %q", s.Screen())
	}
}

func TestLateAttachGetsBacklog(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Printf("early output before anyone attached\n")

	c, err := Attach(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.WaitFor("early output", 2*time.Second) {
		t.Errorf("late attach missed backlog; screen=%q", c.Screen())
	}
}

func TestMultipleClients(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Attach(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	s.Printf("fan-out\n")
	for i, c := range clients {
		if !c.WaitFor("fan-out", 2*time.Second) {
			t.Errorf("client %d missed output", i)
		}
	}
}

func TestKeyboardInput(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Attach(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Send("retry"); err != nil {
		t.Fatal(err)
	}
	select {
	case line := <-s.Input():
		if line != "retry" {
			t.Errorf("input = %q", line)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("installer never received the keystroke line")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Write([]byte("x")); err == nil {
		t.Error("Write after Close should fail")
	}
	s.Close() // idempotent
}

func TestClientDisconnectDoesNotBreakServer(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Attach(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		s.Printf("still alive %d\n", i)
	}
	if !strings.Contains(s.Screen(), "still alive 9") {
		t.Error("server output lost after client disconnect")
	}
}

func TestFigure7StyleScreen(t *testing.T) {
	// Render an installation status screen shaped like the paper's
	// Figure 7 and verify a remote viewer captures it intact.
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Attach(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s.Printf("Red Hat Linux (C) 2000 Red Hat, Inc.\n")
	s.Printf("+---------------- Package Installation -----------------+\n")
	s.Printf(" Name   : dev-3.0.6-5\n")
	s.Printf(" Size   : 340k\n")
	s.Printf(" Packages  Bytes  Time\n")
	s.Printf(" Total     : 162  386M  0:01.44\n")
	if !c.WaitFor("Total     : 162", 2*time.Second) {
		t.Fatalf("screen = %q", c.Screen())
	}
	if !strings.Contains(c.Screen(), "Package Installation") {
		t.Error("banner missing")
	}
}

package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rocks/internal/rpm"
)

func TestWriteAndReadTree(t *testing.T) {
	dir := t.TempDir()
	repo := rpm.NewRepository("src")
	p := rpm.New("dhcp", v("2.0", "5"), rpm.ArchI386,
		rpm.FileEntry{Path: "/usr/sbin/dhcpd", Mode: 0o755, Data: []byte("binary")})
	p.Summary = "DHCP server"
	repo.Add(p)
	repo.Add(rpm.New("glibc", v("2.2.4", "24"), rpm.ArchI386))

	n, err := WriteTree(repo, dir)
	if err != nil || n != 2 {
		t.Fatalf("WriteTree = %d, %v", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "RedHat", "RPMS", "dhcp-2.0-5.i386.rpm")); err != nil {
		t.Fatalf("package file missing: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil || !strings.Contains(string(manifest), "dhcp-2.0-5.i386") {
		t.Errorf("MANIFEST = %q, %v", manifest, err)
	}

	got, err := ReadTree(dir, "reread")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("reread %d packages", got.Len())
	}
	q := got.Get("dhcp-2.0-5.i386")
	if q == nil || q.Summary != "DHCP server" || string(q.Files[0].Data) != "binary" {
		t.Errorf("round trip lost data: %+v", q)
	}
	if q.Source != "reread" {
		t.Errorf("provenance = %q", q.Source)
	}
}

func TestReadTreeErrors(t *testing.T) {
	if _, err := ReadTree(t.TempDir(), "x"); err == nil {
		t.Error("empty dir should not be a distribution tree")
	}
}

func TestTreeRoundTripThroughBuild(t *testing.T) {
	// synth → write → read → build: the CLI's composition path.
	dir := t.TempDir()
	if _, err := WriteTree(SyntheticRedHat(), dir); err != nil {
		t.Fatal(err)
	}
	repo, err := ReadTree(dir, "mirror")
	if err != nil {
		t.Fatal(err)
	}
	d := Build("fromdisk", nil, Source{Name: "mirror", Repo: repo})
	if d.Repo.Len() != SyntheticRedHat().Len() {
		t.Errorf("lost packages: %d vs %d", d.Repo.Len(), SyntheticRedHat().Len())
	}
}

package dist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rocks/internal/rpm"
)

func TestWriteAndReadTree(t *testing.T) {
	dir := t.TempDir()
	repo := rpm.NewRepository("src")
	p := rpm.New("dhcp", v("2.0", "5"), rpm.ArchI386,
		rpm.FileEntry{Path: "/usr/sbin/dhcpd", Mode: 0o755, Data: []byte("binary")})
	p.Summary = "DHCP server"
	repo.Add(p)
	repo.Add(rpm.New("glibc", v("2.2.4", "24"), rpm.ArchI386))

	n, err := WriteTree(repo, dir)
	if err != nil || n != 2 {
		t.Fatalf("WriteTree = %d, %v", n, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "RedHat", "RPMS", "dhcp-2.0-5.i386.rpm")); err != nil {
		t.Fatalf("package file missing: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil || !strings.Contains(string(manifest), "dhcp-2.0-5.i386") {
		t.Errorf("MANIFEST = %q, %v", manifest, err)
	}

	got, err := ReadTree(dir, "reread")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("reread %d packages", got.Len())
	}
	q := got.Get("dhcp-2.0-5.i386")
	if q == nil || q.Summary != "DHCP server" || string(q.Files[0].Data) != "binary" {
		t.Errorf("round trip lost data: %+v", q)
	}
	if q.Source != "reread" {
		t.Errorf("provenance = %q", q.Source)
	}
}

func TestReadTreeErrors(t *testing.T) {
	if _, err := ReadTree(t.TempDir(), "x"); err == nil {
		t.Error("empty dir should not be a distribution tree")
	}
}

// TestWriteTreeRemovesStalePackages: re-materializing into an existing tree
// must sync RedHat/RPMS/ to exactly the repository — files from a previous
// pass that the new package set no longer contains are deleted, not left to
// resurrect superseded packages on the next read.
func TestWriteTreeRemovesStalePackages(t *testing.T) {
	dir := t.TempDir()
	gen1 := rpm.NewRepository("gen1")
	gen1.Add(rpm.New("alpha", v("1.0", "1"), rpm.ArchI386))
	gen1.Add(rpm.New("beta", v("1.0", "1"), rpm.ArchI386))
	if _, err := WriteTree(gen1, dir); err != nil {
		t.Fatal(err)
	}
	gen2 := rpm.NewRepository("gen2")
	gen2.Add(rpm.New("alpha", v("1.0", "1"), rpm.ArchI386))
	gen2.Add(rpm.New("gamma", v("2.0", "1"), rpm.ArchI386))
	if _, err := WriteTree(gen2, dir); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "RedHat", "RPMS", "beta-1.0-1.i386.rpm")); !os.IsNotExist(err) {
		t.Errorf("stale beta file survived the rewrite: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil || strings.Contains(string(manifest), "beta") {
		t.Errorf("MANIFEST still lists beta: %q, %v", manifest, err)
	}
	got, err := ReadTree(dir, "reread")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Get("beta-1.0-1.i386") != nil || got.Get("gamma-2.0-1.i386") == nil {
		t.Errorf("reread tree = %d packages, beta=%v", got.Len(), got.Get("beta-1.0-1.i386"))
	}
}

// TestRebuildRoundTripAfterUpdate is the regression for the stale-file bug:
// build → materialize → apply updates → re-materialize into the same tree →
// reread. Before the sync fix the superseded .rpm files lingered and the
// reread tree resurrected old versions (and now fails MANIFEST verification
// as orphans).
func TestRebuildRoundTripAfterUpdate(t *testing.T) {
	dir := t.TempDir()
	base := SyntheticRedHat()
	gen1 := Build("gen1", nil, Source{"base", base})
	if _, err := WriteTree(gen1.Repo, dir); err != nil {
		t.Fatal(err)
	}
	prev, err := ReadTree(dir, "prev")
	if err != nil {
		t.Fatal(err)
	}
	updates := GenerateUpdates(base, 20, 3)
	gen2 := Build("gen2", nil, Source{"prev", prev}, Source{"updates", updates})
	if _, err := WriteTree(gen2.Repo, dir); err != nil {
		t.Fatal(err)
	}

	got, err := ReadTree(dir, "reread")
	if err != nil {
		t.Fatalf("reread after in-place rebuild: %v", err)
	}
	if got.Len() != gen2.Repo.Len() {
		t.Fatalf("reread %d packages, wrote %d", got.Len(), gen2.Repo.Len())
	}
	for _, up := range updates.All() {
		newest := got.Newest(up.Name, up.Arch)
		if newest == nil || rpm.Compare(newest.Version, up.Version) < 0 {
			t.Errorf("%s: tree resurrected a superseded version (%v)", up.Name, newest)
		}
	}
	v, err := VerifyTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Errorf("rebuilt tree failed verification: %s", v.Summary())
	}
}

// TestReadTreeDetectsTampering: a same-NVRA package rebuilt with different
// bytes slipped over a materialized file disagrees with the MANIFEST digest;
// raw bit-rot that breaks decoding is caught too.
func TestReadTreeDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	repo := rpm.NewRepository("src")
	repo.Add(rpm.New("tool", v("1.0", "1"), rpm.ArchI386,
		rpm.FileEntry{Path: "/t", Mode: 0o644, Data: []byte("genuine")}))
	repo.Add(rpm.New("other", v("1.0", "1"), rpm.ArchI386,
		rpm.FileEntry{Path: "/o", Mode: 0o644, Data: []byte("fine")}))
	if _, err := WriteTree(repo, dir); err != nil {
		t.Fatal(err)
	}
	evil := rpm.New("tool", v("1.0", "1"), rpm.ArchI386,
		rpm.FileEntry{Path: "/t", Mode: 0o644, Data: []byte("swapped")})
	target := filepath.Join(dir, "RedHat", "RPMS", "tool-1.0-1.i386.rpm")
	if err := os.WriteFile(target, evil.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadTree(dir, "x"); err == nil || !strings.Contains(err.Error(), "tampered") ||
		!strings.Contains(err.Error(), "tool-1.0-1.i386.rpm") {
		t.Errorf("ReadTree of a tampered tree: err = %v", err)
	}
	v, err := VerifyTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Tampered) != 1 || v.Tampered[0] != "tool-1.0-1.i386.rpm" || v.Verified != 1 {
		t.Errorf("verify = %+v", v)
	}

	// Bit-rot: damage the genuine file's payload bytes directly.
	raw, err := os.ReadFile(filepath.Join(dir, "RedHat", "RPMS", "other-1.0-1.i386.rpm"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "RedHat", "RPMS", "other-1.0-1.i386.rpm"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err = VerifyTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Tampered) != 2 || v.Verified != 0 {
		t.Errorf("verify after bit-rot = %+v, want both files tampered", v)
	}
	// A corrupt file is present-but-bad: it must not double-report as
	// missing just because its content no longer decodes to its NVRA.
	if len(v.Missing) != 0 {
		t.Errorf("tampered files also reported missing: %v", v.Missing)
	}
	if !strings.Contains(v.Summary(), "TREE CORRUPT") {
		t.Errorf("summary = %q", v.Summary())
	}
}

// TestVerifyTreeOrphansAndMissing: a .rpm the MANIFEST does not list and a
// listed file that is gone are both reported, by name, in one pass.
func TestVerifyTreeOrphansAndMissing(t *testing.T) {
	dir := t.TempDir()
	repo := rpm.NewRepository("src")
	repo.Add(rpm.New("alpha", v("1.0", "1"), rpm.ArchI386))
	repo.Add(rpm.New("beta", v("1.0", "1"), rpm.ArchI386))
	if _, err := WriteTree(repo, dir); err != nil {
		t.Fatal(err)
	}
	stray := rpm.New("stray", v("9.9", "9"), rpm.ArchI386)
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	if err := os.WriteFile(filepath.Join(rpms, stray.Filename()), stray.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(rpms, "beta-1.0-1.i386.rpm")); err != nil {
		t.Fatal(err)
	}

	v, err := VerifyTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v.Clean() {
		t.Fatal("corrupt tree verified clean")
	}
	if len(v.Orphaned) != 1 || v.Orphaned[0] != "stray-9.9-9.i386.rpm" {
		t.Errorf("orphaned = %v", v.Orphaned)
	}
	if len(v.Missing) != 1 || v.Missing[0] != "beta-1.0-1.i386.rpm" {
		t.Errorf("missing = %v", v.Missing)
	}
	if _, err := ReadTree(dir, "x"); err == nil {
		t.Error("ReadTree accepted a tree with orphaned and missing files")
	}

	// A clean tree, for contrast, verifies everything.
	clean := t.TempDir()
	if _, err := WriteTree(repo, clean); err != nil {
		t.Fatal(err)
	}
	cv, err := VerifyTree(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !cv.Clean() || cv.Verified != 2 || !strings.Contains(cv.Summary(), "verified 2/2") {
		t.Errorf("clean verify = %+v (%s)", cv, cv.Summary())
	}
}

func TestTreeRoundTripThroughBuild(t *testing.T) {
	// synth → write → read → build: the CLI's composition path.
	dir := t.TempDir()
	if _, err := WriteTree(SyntheticRedHat(), dir); err != nil {
		t.Fatal(err)
	}
	repo, err := ReadTree(dir, "mirror")
	if err != nil {
		t.Fatal(err)
	}
	d := Build("fromdisk", nil, Source{Name: "mirror", Repo: repo})
	if d.Repo.Len() != SyntheticRedHat().Len() {
		t.Errorf("lost packages: %d vs %d", d.Repo.Len(), SyntheticRedHat().Len())
	}
}

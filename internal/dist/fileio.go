package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rocks/internal/rpm"
)

// On-disk distribution trees. rocks-dist materializes a distribution as a
// directory shaped like a Red Hat tree (RedHat/RPMS/*.rpm); this file moves
// repositories between memory and such trees so the rocks-dist CLI can
// compose distributions across process boundaries.

// WriteTree writes every package of a repository under dir/RedHat/RPMS/,
// plus a MANIFEST listing NVRA, size, and provenance. It returns the number
// of package files written.
func WriteTree(repo *rpm.Repository, dir string) (int, error) {
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	if err := os.MkdirAll(rpms, 0o755); err != nil {
		return 0, fmt.Errorf("dist: %w", err)
	}
	var manifest []string
	n := 0
	for _, p := range repo.All() {
		f, err := os.Create(filepath.Join(rpms, p.Filename()))
		if err != nil {
			return n, fmt.Errorf("dist: %w", err)
		}
		if _, err := p.WriteTo(f); err != nil {
			f.Close()
			return n, fmt.Errorf("dist: writing %s: %w", p.Filename(), err)
		}
		if err := f.Close(); err != nil {
			return n, err
		}
		manifest = append(manifest, fmt.Sprintf("%s %d %s", p.NVRA(), p.Size, p.Source))
		n++
	}
	sort.Strings(manifest)
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"),
		[]byte(strings.Join(manifest, "\n")+"\n"), 0o644); err != nil {
		return n, err
	}
	return n, nil
}

// Materialize writes the full distribution tree: packages under
// RedHat/RPMS/ plus the XML configuration infrastructure under profiles/ —
// the §6.2.3 build directory users edit to customize a distribution.
func Materialize(d *Distribution, dir string) (int, error) {
	n, err := WriteTree(d.Repo, dir)
	if err != nil {
		return n, err
	}
	if d.Framework != nil {
		if err := d.Framework.Export(filepath.Join(dir, "profiles")); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadTree loads every .rpm under dir/RedHat/RPMS/ into a repository named
// after the source name.
func ReadTree(dir, name string) (*rpm.Repository, error) {
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	entries, err := os.ReadDir(rpms)
	if err != nil {
		return nil, fmt.Errorf("dist: %s is not a distribution tree: %w", dir, err)
	}
	repo := rpm.NewRepository(name)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rpm") {
			continue
		}
		f, err := os.Open(filepath.Join(rpms, e.Name()))
		if err != nil {
			return nil, err
		}
		p, err := rpm.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dist: reading %s: %w", e.Name(), err)
		}
		p.Source = name
		repo.Add(p)
	}
	return repo, nil
}

package dist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rocks/internal/rpm"
)

// On-disk distribution trees. rocks-dist materializes a distribution as a
// directory shaped like a Red Hat tree (RedHat/RPMS/*.rpm); this file moves
// repositories between memory and such trees so the rocks-dist CLI can
// compose distributions across process boundaries. The MANIFEST written
// next to the tree carries each package's SHA-256 payload digest, so a
// reread (or an explicit VerifyTree pass) can prove the tree still holds
// exactly the bytes the build produced — a half-written materialize, a
// corrupted disk, or a stale leftover file fails loudly by name instead of
// poisoning downstream installs.

// WriteTree writes every package of a repository under dir/RedHat/RPMS/,
// plus a MANIFEST listing NVRA, size, digest, and provenance. The RPMS
// directory is synchronized to exactly the repository contents: stale .rpm
// files from a previous materialize (superseded packages) are deleted, so
// re-materializing into an existing tree can never resurrect them. It
// returns the number of package files written.
func WriteTree(repo *rpm.Repository, dir string) (int, error) {
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	if err := os.MkdirAll(rpms, 0o755); err != nil {
		return 0, fmt.Errorf("dist: %w", err)
	}
	var manifest []ManifestEntry
	written := make(map[string]bool)
	n := 0
	for _, p := range repo.All() {
		f, err := os.Create(filepath.Join(rpms, p.Filename()))
		if err != nil {
			return n, fmt.Errorf("dist: %w", err)
		}
		if _, err := p.WriteTo(f); err != nil {
			f.Close()
			return n, fmt.Errorf("dist: writing %s: %w", p.Filename(), err)
		}
		if err := f.Close(); err != nil {
			return n, fmt.Errorf("dist: writing %s: %w", p.Filename(), err)
		}
		written[p.Filename()] = true
		manifest = append(manifest, ManifestEntry{
			NVRA: p.NVRA(), Size: p.Size, Digest: p.EnsureDigest(), Source: p.Source,
		})
		n++
	}
	// Sync: anything in RedHat/RPMS/ this pass did not write is a leftover
	// from an earlier materialize of a different package set.
	entries, err := os.ReadDir(rpms)
	if err != nil {
		return n, fmt.Errorf("dist: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rpm") || written[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(rpms, e.Name())); err != nil {
			return n, fmt.Errorf("dist: removing stale %s: %w", e.Name(), err)
		}
	}
	sort.Slice(manifest, func(i, j int) bool { return manifest[i].NVRA < manifest[j].NVRA })
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"),
		[]byte(FormatManifest(manifest)), 0o644); err != nil {
		return n, fmt.Errorf("dist: writing MANIFEST: %w", err)
	}
	return n, nil
}

// Materialize writes the full distribution tree: packages under
// RedHat/RPMS/ plus the XML configuration infrastructure under profiles/ —
// the §6.2.3 build directory users edit to customize a distribution.
func Materialize(d *Distribution, dir string) (int, error) {
	n, err := WriteTree(d.Repo, dir)
	if err != nil {
		return n, err
	}
	if d.Framework != nil {
		if err := d.Framework.Export(filepath.Join(dir, "profiles")); err != nil {
			return n, err
		}
	}
	return n, nil
}

// readManifestFile loads dir/MANIFEST into an NVRA-keyed map. A missing
// MANIFEST returns nil (a hand-assembled tree; verification is skipped).
func readManifestFile(dir string) (map[string]ManifestEntry, error) {
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: reading MANIFEST in %s: %w", dir, err)
	}
	entries, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("dist: %s: %w", dir, err)
	}
	byNVRA := make(map[string]ManifestEntry, len(entries))
	for _, e := range entries {
		byNVRA[e.NVRA] = e
	}
	return byNVRA, nil
}

// ReadTree loads every .rpm under dir/RedHat/RPMS/ into a repository named
// after the source name. When the tree carries a MANIFEST (everything
// WriteTree produced does), the contents are checked against it: a package
// whose payload digest disagrees (a tampered or bit-rotted file), a .rpm
// the MANIFEST does not list (an orphan a broken sync left behind), or a
// listed package whose file is gone all fail loudly, naming the file —
// such a tree must never seed a repository.
func ReadTree(dir, name string) (*rpm.Repository, error) {
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	entries, err := os.ReadDir(rpms)
	if err != nil {
		return nil, fmt.Errorf("dist: %s is not a distribution tree: %w", dir, err)
	}
	manifest, err := readManifestFile(dir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	repo := rpm.NewRepository(name)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rpm") {
			continue
		}
		f, err := os.Open(filepath.Join(rpms, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("dist: reading %s: %w", e.Name(), err)
		}
		p, err := rpm.Read(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dist: reading %s: %w", e.Name(), err)
		}
		if manifest != nil {
			m, listed := manifest[p.NVRA()]
			if !listed || p.Filename() != e.Name() {
				return nil, fmt.Errorf("dist: %s: %s is not in MANIFEST (orphaned file)", dir, e.Name())
			}
			if m.Digest != "" && p.EnsureDigest() != m.Digest {
				return nil, fmt.Errorf("dist: %s: %s does not match its MANIFEST digest (tampered tree)", dir, e.Name())
			}
			seen[p.NVRA()] = true
		}
		p.Source = name
		repo.Add(p)
	}
	for nvra := range manifest {
		if !seen[nvra] {
			return nil, fmt.Errorf("dist: %s: MANIFEST lists %s but the file is missing", dir, nvra+".rpm")
		}
	}
	return repo, nil
}

// TreeVerify is the result of a VerifyTree pass: how many packages were
// checked and every file that failed, by failure class.
type TreeVerify struct {
	// Packages counts .rpm files examined; Verified counts those whose
	// payload digest matched the MANIFEST.
	Packages int `json:"packages"`
	Verified int `json:"verified"`
	// Tampered lists files whose content does not match the MANIFEST digest
	// (including files that no longer decode at all).
	Tampered []string `json:"tampered,omitempty"`
	// Orphaned lists .rpm files the MANIFEST does not account for.
	Orphaned []string `json:"orphaned,omitempty"`
	// Missing lists MANIFEST entries whose file is gone.
	Missing []string `json:"missing,omitempty"`
}

// Clean reports whether the tree passed verification.
func (v TreeVerify) Clean() bool {
	return len(v.Tampered) == 0 && len(v.Orphaned) == 0 && len(v.Missing) == 0
}

// Summary renders the one-line report `rocks-dist -verify` prints.
func (v TreeVerify) Summary() string {
	if v.Clean() {
		return fmt.Sprintf("rocks-dist: verified %d/%d packages against MANIFEST digests", v.Verified, v.Packages)
	}
	return fmt.Sprintf("rocks-dist: TREE CORRUPT: %d tampered %v, %d orphaned %v, %d missing %v",
		len(v.Tampered), v.Tampered, len(v.Orphaned), v.Orphaned, len(v.Missing), v.Missing)
}

// VerifyTree audits a materialized tree against its MANIFEST without
// building a repository, collecting every discrepancy instead of stopping
// at the first (ReadTree's job). It errors only when the directory is not
// a tree or carries no MANIFEST to verify against.
func VerifyTree(dir string) (TreeVerify, error) {
	var v TreeVerify
	rpms := filepath.Join(dir, "RedHat", "RPMS")
	entries, err := os.ReadDir(rpms)
	if err != nil {
		return v, fmt.Errorf("dist: %s is not a distribution tree: %w", dir, err)
	}
	manifest, err := readManifestFile(dir)
	if err != nil {
		return v, err
	}
	if manifest == nil {
		return v, fmt.Errorf("dist: %s has no MANIFEST to verify against", dir)
	}
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rpm") {
			continue
		}
		v.Packages++
		f, err := os.Open(filepath.Join(rpms, e.Name()))
		if err != nil {
			v.Tampered = append(v.Tampered, e.Name())
			seen[strings.TrimSuffix(e.Name(), ".rpm")] = true
			continue
		}
		p, err := rpm.Read(f)
		f.Close()
		if err != nil {
			// Undecodable bytes under a .rpm name: corrupt by definition.
			// The MANIFEST entry this file materialized is present-but-bad,
			// not missing — mark it seen so it is reported exactly once.
			v.Tampered = append(v.Tampered, e.Name())
			seen[strings.TrimSuffix(e.Name(), ".rpm")] = true
			continue
		}
		m, listed := manifest[p.NVRA()]
		if !listed || p.Filename() != e.Name() {
			v.Orphaned = append(v.Orphaned, e.Name())
			continue
		}
		seen[p.NVRA()] = true
		if m.Digest != "" && p.EnsureDigest() != m.Digest {
			v.Tampered = append(v.Tampered, e.Name())
			continue
		}
		v.Verified++
	}
	for nvra := range manifest {
		if !seen[nvra] {
			v.Missing = append(v.Missing, nvra+".rpm")
		}
	}
	sort.Strings(v.Tampered)
	sort.Strings(v.Orphaned)
	sort.Strings(v.Missing)
	return v, nil
}

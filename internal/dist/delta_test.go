package dist

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rocks/internal/faults"
	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

// payloadPkg builds a package whose serialized form is dominated by file
// data, so a bit flipped at the body midpoint lands inside the payload —
// exactly the corruption only an end-to-end digest detects.
func payloadPkg(name, ver, rel, seed string) *rpm.Package {
	data := bytes.Repeat([]byte(seed), 4096)
	return rpm.New(name, v(ver, rel), rpm.ArchI386,
		rpm.FileEntry{Path: "/usr/lib/" + name, Mode: 0o644, Data: data})
}

// TestMirrorDeltaRefetchesNothingWhenUnchanged is the acceptance criterion:
// re-mirroring an unchanged distribution against the previous mirror as
// baseline must fetch zero package bodies — observed on the server, not
// inferred from the client's report.
func TestMirrorDeltaRefetchesNothingWhenUnchanged(t *testing.T) {
	parent := Build("npaci", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	server := NewServer(parent)
	srv := httptest.NewServer(server)
	defer srv.Close()

	first, rep1, err := MirrorReportWith(srv.URL, "gen1", MirrorOptions{Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.ManifestUsed || rep1.Fetched != parent.Repo.Len() || rep1.Skipped != 0 {
		t.Fatalf("full pass report = %+v", rep1)
	}
	if rep1.Verified != rep1.Fetched {
		t.Errorf("full pass verified %d of %d fetched bodies", rep1.Verified, rep1.Fetched)
	}
	fullRequests := server.Stats().PackageRequests

	second, rep2, err := MirrorReportWith(srv.URL, "gen2",
		MirrorOptions{Client: srv.Client(), Baseline: first})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != parent.Repo.Len() || rep2.Fetched != 0 || rep2.FetchedBytes != 0 {
		t.Fatalf("delta pass report = %+v, want everything skipped", rep2)
	}
	if got := server.Stats().PackageRequests; got != fullRequests {
		t.Errorf("delta pass hit the server for %d package bodies, want 0", got-fullRequests)
	}
	// The delta result is a complete repository with fresh provenance, and
	// reusing the baseline must not have restamped the baseline itself.
	if second.Len() != parent.Repo.Len() {
		t.Fatalf("delta mirror has %d packages, parent has %d", second.Len(), parent.Repo.Len())
	}
	for _, p := range parent.Repo.All() {
		q := second.Get(p.NVRA())
		if q == nil {
			t.Fatalf("delta mirror missing %s", p.NVRA())
		}
		if q.Source != "gen2" {
			t.Errorf("%s provenance = %q, want gen2", p.NVRA(), q.Source)
		}
	}
	for _, p := range first.All() {
		if p.Source != "gen1" {
			t.Errorf("delta pass mutated baseline provenance of %s to %q", p.NVRA(), p.Source)
		}
	}
}

// TestMirrorDeltaFetchesOnlyChanged: a version bump and a same-NVRA rebuild
// both invalidate the baseline entry (by NVRA and by digest respectively);
// only those two bodies are transferred.
func TestMirrorDeltaFetchesOnlyChanged(t *testing.T) {
	serve := func(pkgs ...*rpm.Package) *httptest.Server {
		repo := rpm.NewRepository("r")
		for _, p := range pkgs {
			repo.Add(p)
		}
		srv := httptest.NewServer(Handler(Build("parent", nil, Source{"r", repo})))
		t.Cleanup(srv.Close)
		return srv
	}

	srvA := serve(
		payloadPkg("alpha", "1.0", "1", "a"),
		payloadPkg("beta", "1.0", "1", "b"),
		payloadPkg("gamma", "1.0", "1", "c"))
	baseline, _, err := MirrorReportWith(srvA.URL, "gen1", MirrorOptions{Client: srvA.Client()})
	if err != nil {
		t.Fatal(err)
	}

	// Generation 2: alpha unchanged, beta version-bumped, gamma rebuilt with
	// different bytes under the same NVRA.
	srvB := serve(
		payloadPkg("alpha", "1.0", "1", "a"),
		payloadPkg("beta", "1.0", "2", "b"),
		payloadPkg("gamma", "1.0", "1", "C"))
	got, rep, err := MirrorReportWith(srvB.URL, "gen2",
		MirrorOptions{Client: srvB.Client(), Baseline: baseline})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Fetched != 2 || rep.Verified != 2 {
		t.Fatalf("report = %+v, want 1 skipped / 2 fetched / 2 verified", rep)
	}
	if got.Get("beta-1.0-2.i386") == nil {
		t.Error("version-bumped beta not fetched")
	}
	g := got.Get("gamma-1.0-1.i386")
	if g == nil {
		t.Fatal("rebuilt gamma missing")
	}
	if g.Files[0].Data[0] != 'C' {
		t.Error("rebuilt gamma carries the stale baseline payload; the digest change was not honored")
	}
}

// TestMirrorEscapedFilenames: a package name carrying a space must survive
// the full serve→listing→manifest→fetch chain, on both the manifest path
// and the legacy listing-only path.
func TestMirrorEscapedFilenames(t *testing.T) {
	repo := rpm.NewRepository("r")
	repo.Add(payloadPkg("odd name", "1.0", "1", "z"))
	repo.Add(payloadPkg("plain", "1.0", "1", "p"))
	parent := Build("parent", nil, Source{"r", repo})
	inner := Handler(parent)

	srv := httptest.NewServer(inner)
	defer srv.Close()
	mirrored, rep, err := MirrorReportWith(srv.URL, "m", MirrorOptions{Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestUsed || rep.Verified != 2 {
		t.Fatalf("report = %+v", rep)
	}
	odd := mirrored.Get("odd name-1.0-1.i386")
	if odd == nil {
		t.Fatal("space-named package lost in manifest-path mirror")
	}
	if odd.Files[0].Data[0] != 'z' {
		t.Error("space-named package payload corrupted")
	}

	// Legacy parent: no manifest endpoint, only the escaped listing.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/RedHat/base/") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer legacy.Close()
	mirrored2, rep2, err := MirrorReportWith(legacy.URL, "m2",
		MirrorOptions{Client: legacy.Client(), RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ManifestUsed || rep2.Verified != 0 {
		t.Fatalf("legacy report = %+v, want no manifest and nothing verified", rep2)
	}
	if mirrored2.Get("odd name-1.0-1.i386") == nil {
		t.Error("space-named package lost in listing-path mirror")
	}
}

// TestManifestEscapesOddNames: the manifest format keeps exactly four
// whitespace-delimited fields per line no matter what the NVRA or source
// contain, and parsing undoes the escaping.
func TestManifestEscapesOddNames(t *testing.T) {
	in := []ManifestEntry{{NVRA: "odd name-1.0-1.i386", Size: 7, Digest: "abc123", Source: "my mirror"}}
	text := FormatManifest(in)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if got := len(strings.Fields(line)); got != 4 {
			t.Fatalf("line %q has %d fields, want 4", line, got)
		}
	}
	out, err := ParseManifest([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

// TestMirrorUnderCorruption drives the faults bit-flip injector through the
// mirror client: bounded corruption is detected by digest, retried, and
// accounted; unbounded corruption exhausts the retry budget and fails
// naming the file — a corrupt body never reaches the built repository.
func TestMirrorUnderCorruption(t *testing.T) {
	cases := []struct {
		name    string
		count   int // injector rule cap; 0 = every fetch corrupt
		wantErr bool
	}{
		{"bounded corruption absorbed", 2, false},
		{"persistent corruption fails naming the file", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			repo := rpm.NewRepository("r")
			clean := map[string]byte{"alpha": 'a', "beta": 'b', "gamma": 'c'}
			for name, seed := range clean {
				repo.Add(payloadPkg(name, "1.0", "1", string(seed)))
			}
			parent := Build("parent", nil, Source{"r", repo})
			inner := Handler(parent)
			inj := faults.NewInjector(7, faults.Rule{
				Op: faults.OpHTTPPackage, Mode: faults.ModeCorrupt, Count: tc.count})
			faulty := faults.Middleware(inj, "X-Client-IP", inner)
			// Corrupt only package bodies: the manifest and listing arrive
			// clean, which is what isolates the digest check under test.
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, ".rpm") {
					faulty.ServeHTTP(w, r)
					return
				}
				inner.ServeHTTP(w, r)
			}))
			defer srv.Close()

			got, rep, err := MirrorReportWith(srv.URL, "m", MirrorOptions{
				Client: srv.Client(), Workers: 1, Retries: 3, RetryBackoff: time.Millisecond})
			if tc.wantErr {
				if err == nil {
					t.Fatal("mirror of a persistently corrupting parent must fail")
				}
				// Workers:1 fetches in listing order; the first file wins.
				if !strings.Contains(err.Error(), "alpha-1.0-1.i386.rpm") {
					t.Errorf("error does not name the corrupt file: %v", err)
				}
				if !strings.Contains(err.Error(), "attempts") {
					t.Errorf("error does not mention the retry budget: %v", err)
				}
				if rep.CorruptBodies < 3 {
					t.Errorf("CorruptBodies = %d, want every attempt counted", rep.CorruptBodies)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if rep.CorruptBodies != tc.count {
				t.Errorf("CorruptBodies = %d, want %d", rep.CorruptBodies, tc.count)
			}
			if rep.Fetched != 3 || rep.Verified != 3 {
				t.Errorf("report = %+v, want 3 fetched and verified", rep)
			}
			if !inj.Exhausted() {
				t.Error("corruption budget not consumed")
			}
			// Every surviving body is the clean one, byte for byte.
			for name, seed := range clean {
				p := got.Get(name + "-1.0-1.i386")
				if p == nil {
					t.Fatalf("mirror missing %s", name)
				}
				for _, b := range p.Files[0].Data {
					if b != seed {
						t.Fatalf("%s payload corrupted: found byte %q", name, b)
					}
				}
			}
		})
	}
}

// Package dist implements rocks-dist (§6.2): the tool that gathers software
// from multiple sources — a Red Hat mirror, Red Hat's updates, third-party
// contrib packages, and locally built RPMs — and constructs a single new
// distribution in which only the newest version of each package survives.
//
// Distributions compose hierarchically (Figure 6): a child distribution
// replicates its parent (over HTTP in the paper, by reference here — the
// analogue of the symlink tree, §6.2.3) and layers local packages and an
// edited XML configuration framework on top. Because inherited packages are
// shared rather than copied, a derived distribution costs only its local
// additions (the paper: ~25 MB, built in under a minute).
package dist

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

// Source is one input to a distribution build, in precedence order of the
// paper's Figure 5: base mirror, updates, contrib, local RPMS.
type Source struct {
	Name string
	Repo *rpm.Repository
}

// Distribution is a built, installable software set: the resolved package
// repository plus the XML configuration framework that generates kickstart
// files against it.
type Distribution struct {
	Name      string
	Parent    string // name of the parent distribution ("" for a root build)
	Repo      *rpm.Repository
	Framework *kickstart.Framework
	Report    BuildReport
}

// BuildReport records what a build did — the numbers an administrator reads
// to confirm an update pass picked up what it should have.
type BuildReport struct {
	// Considered counts every package version seen across all sources.
	Considered int
	// Included counts packages placed in the distribution (one per
	// name/arch).
	Included int
	// Superseded lists NVRAs dropped because a newer version existed in
	// some source ("the most recent software" rule, §6.2.1).
	Superseded []string
	// Linked counts packages inherited from the parent distribution by
	// reference (the symlink tree); Copied counts packages physically new
	// in this distribution, with CopiedBytes their total size.
	Linked      int
	Copied      int
	CopiedBytes int64
	// Duration is how long the build took (the paper: under a minute).
	Duration time.Duration
}

// Summary renders the one-screen report rocks-dist prints.
func (r BuildReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rocks-dist: %d package versions considered, %d included, %d superseded\n",
		r.Considered, r.Included, len(r.Superseded))
	fmt.Fprintf(&b, "rocks-dist: %d linked from parent, %d copied (%d bytes), built in %v\n",
		r.Linked, r.Copied, r.CopiedBytes, r.Duration)
	return b.String()
}

// Build runs the rocks-dist pipeline of Figure 5: merge the sources, keep
// only the newest version of every (name, arch) pair, and attach the given
// configuration framework. Later sources win version ties (a rebuilt local
// package with the same NVRA replaces the mirrored one).
func Build(name string, framework *kickstart.Framework, sources ...Source) *Distribution {
	start := time.Now()
	d := &Distribution{
		Name:      name,
		Repo:      rpm.NewRepository(name),
		Framework: framework,
	}
	type key struct{ name, arch string }
	best := make(map[key]*rpm.Package)
	var order []key // deterministic report ordering
	for _, src := range sources {
		for _, p := range src.Repo.All() {
			d.Report.Considered++
			k := key{p.Name, p.Arch}
			cur, ok := best[k]
			if !ok {
				best[k] = p
				order = append(order, k)
				continue
			}
			if c := rpm.Compare(p.Version, cur.Version); c > 0 || (c == 0 && src.Name != cur.Source) {
				// Newer version, or same version from a later source.
				if c > 0 {
					d.Report.Superseded = append(d.Report.Superseded, cur.NVRA())
				}
				best[k] = p
			} else if c < 0 {
				d.Report.Superseded = append(d.Report.Superseded, p.NVRA())
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].arch < order[j].arch
	})
	for _, k := range order {
		d.Repo.Add(best[k])
		d.Report.Included++
	}
	sort.Strings(d.Report.Superseded)
	d.Report.Duration = time.Since(start)
	return d
}

// BuildChild derives a new distribution from a parent (Figure 6's
// object-oriented model): the parent's packages are inherited by reference
// — the in-memory analogue of rocks-dist's symlink tree — and local sources
// are layered on top, newer versions superseding inherited ones. The
// framework defaults to a clone of the parent's so the child can edit nodes
// and edges without affecting the parent (§6.2.3).
func BuildChild(name string, parent *Distribution, framework *kickstart.Framework, locals ...Source) *Distribution {
	if framework == nil {
		framework = parent.Framework.Clone()
	}
	sources := append([]Source{{Name: parent.Name, Repo: parent.Repo}}, locals...)
	d := Build(name, framework, sources...)
	d.Parent = parent.Name
	// Recompute link/copy accounting: anything whose Source provenance is
	// outside this build's local sources was inherited.
	localNames := map[string]bool{}
	for _, l := range locals {
		localNames[l.Name] = true
	}
	for _, p := range d.Repo.All() {
		if localNames[p.Source] {
			d.Report.Copied++
			d.Report.CopiedBytes += p.Size
		} else {
			d.Report.Linked++
		}
	}
	return d
}

// ResolveProfile resolves a kickstart profile's package list against the
// distribution, returning the concrete packages (newest versions) a node
// will download. It is the handoff point between the XML framework and the
// package repository.
func (d *Distribution) ResolveProfile(p *kickstart.Profile) ([]*rpm.Package, error) {
	pkgs, err := d.Repo.Resolve(p.Arch, p.Packages)
	if err != nil {
		return nil, fmt.Errorf("dist %q: %w", d.Name, err)
	}
	return pkgs, nil
}

// Lineage walks Parent names up from this distribution. Only the immediate
// parent name is stored; the full chain is reconstructed by the caller that
// holds the distributions. Provided for display.
func (d *Distribution) Lineage() string {
	if d.Parent == "" {
		return d.Name
	}
	return d.Parent + " -> " + d.Name
}

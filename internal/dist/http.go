package dist

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocks/internal/rpm"
)

// HTTP transport for distributions. The paper's nodes pull RPMs with
// Kickstart's HTTP method (§5), and rocks-dist replicates parent
// distributions with wget over HTTP (§6.2.3). The layout mirrors a Red Hat
// tree: packages live under RedHat/RPMS/, and RedHat/RPMS/ itself returns a
// plain-text listing (one filename per line) that the mirror client walks
// the way wget walks a directory index.

// Handler serves a distribution read-only over HTTP:
//
//	GET {prefix}/RedHat/RPMS/            → newline-separated package listing
//	GET {prefix}/RedHat/RPMS/<file>.rpm  → the package in its on-disk format
//	GET {prefix}/profiles/graph.dot      → the framework's graph (diagnostic)
//
// Replicating an installation web server is safe precisely because this is
// strictly read-only (§6.3 footnote).
func Handler(d *Distribution) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/RedHat/RPMS/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/RedHat/RPMS/")
		if rest == "" {
			var names []string
			for _, p := range d.Repo.All() {
				names = append(names, p.Filename())
			}
			sort.Strings(names)
			w.Header().Set("Content-Type", "text/plain")
			io.WriteString(w, strings.Join(names, "\n")+"\n")
			return
		}
		meta, err := rpm.ParseFilename(rest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p := d.Repo.Get(meta.NVRA())
		if p == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-rpm")
		if _, err := p.WriteTo(w); err != nil {
			// Connection-level failure; nothing recoverable server-side.
			return
		}
	})
	mux.HandleFunc("/RedHat/base/hdlist", func(w http.ResponseWriter, r *http.Request) {
		// The hdlist gives installers package sizes up front (progress
		// accounting) without fetching payloads: "filename size" per line.
		var lines []string
		for _, p := range d.Repo.All() {
			lines = append(lines, fmt.Sprintf("%s %d", p.Filename(), p.Size))
		}
		sort.Strings(lines)
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, strings.Join(lines, "\n")+"\n")
	})
	mux.HandleFunc("/profiles/graph.dot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		io.WriteString(w, d.Framework.DOT())
	})
	return mux
}

// mirrorDefaultClient bounds every mirror fetch the way the installer's
// default client does (60 s): falling back to http.DefaultClient would let
// one hung package fetch wedge a replication pass forever.
var mirrorDefaultClient = &http.Client{Timeout: 60 * time.Second}

// MirrorOptions tunes a replication pass. The zero value is a sensible
// production default.
type MirrorOptions struct {
	// Client performs the fetches; nil means a shared 60-second-timeout
	// client (never the timeout-less http.DefaultClient).
	Client *http.Client
	// Workers bounds concurrent package fetches; <= 0 means 8 — enough to
	// keep a campus→department link busy without stampeding the parent.
	Workers int
	// Retries is the attempt budget per file (including the first); <= 0
	// means 3. Only transport errors and 5xx responses are retried.
	Retries int
	// RetryBackoff is the wait before the second attempt, doubling per
	// attempt; <= 0 means 100ms.
	RetryBackoff time.Duration
}

// Mirror replicates a served distribution's packages into a local
// repository — the wget step of Figure 6 — with default options. baseURL
// addresses the Handler root (e.g. "http://10.1.1.1/dist"). The returned
// repository's packages carry the mirror's name as provenance.
func Mirror(client *http.Client, baseURL, name string) (*rpm.Repository, error) {
	return MirrorWith(baseURL, name, MirrorOptions{Client: client})
}

// MirrorWith replicates a served distribution with explicit options.
// Packages are fetched by a bounded worker pool with per-file retries, so
// replication scales with package count (§6.2.3) instead of serializing on
// round trips, and a single bad file fails the pass with an error naming
// the file.
func MirrorWith(baseURL, name string, opts MirrorOptions) (*rpm.Repository, error) {
	client := opts.Client
	if client == nil {
		client = mirrorDefaultClient
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 8
	}
	attempts := opts.Retries
	if attempts <= 0 {
		attempts = 3
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}

	baseURL = strings.TrimSuffix(baseURL, "/")
	listURL := baseURL + "/RedHat/RPMS/"
	listing, err := fetchWithRetry(client, listURL, attempts, backoff)
	if err != nil {
		return nil, fmt.Errorf("dist: mirroring %s: %w", listURL, err)
	}
	names := strings.Fields(string(listing))

	// Fetch into a listing-indexed slice so the result is deterministic
	// regardless of worker interleaving; the first failing file (in listing
	// order) wins the error.
	pkgs := make([]*rpm.Package, len(names))
	errs := make([]error, len(names))
	var failed atomic.Bool
	var next atomic.Int64
	if workers > len(names) {
		workers = len(names)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) || failed.Load() {
					return
				}
				p, err := fetchPackage(client, listURL+names[i], attempts, backoff)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				p.Source = name
				pkgs[i] = p
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	// No error recorded means every index was claimed and filled.
	repo := rpm.NewRepository(name)
	for _, p := range pkgs {
		repo.Add(p)
	}
	return repo, nil
}

// fetchPackage downloads and decodes one RPM with bounded retries. Errors
// always name the file, so an administrator knows exactly which package
// stalled a replication pass.
func fetchPackage(client *http.Client, pkgURL string, attempts int, backoff time.Duration) (*rpm.Package, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := client.Get(pkgURL)
		if err != nil {
			lastErr = fmt.Errorf("dist: fetching %s: %w", pkgURL, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("dist: fetching %s: HTTP %s", pkgURL, resp.Status)
			if resp.StatusCode < 500 {
				return nil, lastErr // 4xx will not heal on retry
			}
			continue
		}
		p, err := rpm.Read(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("dist: decoding %s: %w", pkgURL, err)
			continue
		}
		return p, nil
	}
	return nil, fmt.Errorf("dist: giving up after %d attempts: %w", attempts, lastErr)
}

// fetchWithRetry reads one URL's body with the same retry policy as
// package fetches (the listing itself can hit a loaded parent).
func fetchWithRetry(client *http.Client, url string, attempts int, backoff time.Duration) ([]byte, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := client.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("HTTP %s", resp.Status)
			if resp.StatusCode < 500 {
				return nil, lastErr
			}
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	return nil, lastErr
}

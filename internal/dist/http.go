package dist

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"rocks/internal/rpm"
)

// HTTP transport for distributions. The paper's nodes pull RPMs with
// Kickstart's HTTP method (§5), and rocks-dist replicates parent
// distributions with wget over HTTP (§6.2.3). The layout mirrors a Red Hat
// tree: packages live under RedHat/RPMS/, and RedHat/RPMS/ itself returns a
// plain-text listing (one filename per line) that the mirror client walks
// the way wget walks a directory index.

// Handler serves a distribution read-only over HTTP:
//
//	GET {prefix}/RedHat/RPMS/            → newline-separated package listing
//	GET {prefix}/RedHat/RPMS/<file>.rpm  → the package in its on-disk format
//	GET {prefix}/profiles/graph.dot      → the framework's graph (diagnostic)
//
// Replicating an installation web server is safe precisely because this is
// strictly read-only (§6.3 footnote).
func Handler(d *Distribution) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/RedHat/RPMS/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/RedHat/RPMS/")
		if rest == "" {
			var names []string
			for _, p := range d.Repo.All() {
				names = append(names, p.Filename())
			}
			sort.Strings(names)
			w.Header().Set("Content-Type", "text/plain")
			io.WriteString(w, strings.Join(names, "\n")+"\n")
			return
		}
		meta, err := rpm.ParseFilename(rest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p := d.Repo.Get(meta.NVRA())
		if p == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-rpm")
		if _, err := p.WriteTo(w); err != nil {
			// Connection-level failure; nothing recoverable server-side.
			return
		}
	})
	mux.HandleFunc("/RedHat/base/hdlist", func(w http.ResponseWriter, r *http.Request) {
		// The hdlist gives installers package sizes up front (progress
		// accounting) without fetching payloads: "filename size" per line.
		var lines []string
		for _, p := range d.Repo.All() {
			lines = append(lines, fmt.Sprintf("%s %d", p.Filename(), p.Size))
		}
		sort.Strings(lines)
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, strings.Join(lines, "\n")+"\n")
	})
	mux.HandleFunc("/profiles/graph.dot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		io.WriteString(w, d.Framework.DOT())
	})
	return mux
}

// Mirror replicates a served distribution's packages into a local
// repository — the wget step of Figure 6. baseURL addresses the Handler
// root (e.g. "http://10.1.1.1/dist"). The returned repository's packages
// carry the mirror's name as provenance.
func Mirror(client *http.Client, baseURL, name string) (*rpm.Repository, error) {
	if client == nil {
		client = http.DefaultClient
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	listURL := baseURL + "/RedHat/RPMS/"
	resp, err := client.Get(listURL)
	if err != nil {
		return nil, fmt.Errorf("dist: mirroring %s: %w", listURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: mirroring %s: HTTP %s", listURL, resp.Status)
	}
	listing, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: reading listing: %w", err)
	}
	repo := rpm.NewRepository(name)
	for _, fn := range strings.Fields(string(listing)) {
		pkgURL := listURL + fn
		pr, err := client.Get(pkgURL)
		if err != nil {
			return nil, fmt.Errorf("dist: fetching %s: %w", pkgURL, err)
		}
		if pr.StatusCode != http.StatusOK {
			pr.Body.Close()
			return nil, fmt.Errorf("dist: fetching %s: HTTP %s", pkgURL, pr.Status)
		}
		p, err := rpm.Read(pr.Body)
		pr.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("dist: decoding %s: %w", pkgURL, err)
		}
		p.Source = name
		repo.Add(p)
	}
	return repo, nil
}

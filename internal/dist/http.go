package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocks/internal/metrics"
	"rocks/internal/rpm"
)

// HTTP transport for distributions. The paper's nodes pull RPMs with
// Kickstart's HTTP method (§5), and rocks-dist replicates parent
// distributions with wget over HTTP (§6.2.3). The layout mirrors a Red Hat
// tree: packages live under RedHat/RPMS/, and RedHat/RPMS/ itself returns a
// plain-text listing (one filename per line) that the mirror client walks
// the way wget walks a directory index. RedHat/base/manifest adds the
// digest-bearing view of the same tree (NVRA, size, SHA-256, provenance),
// which is what makes delta mirroring and end-to-end verification possible.

// ServeStats counts what a distribution server handed out; /admin/diststats
// exposes them. A re-mirror of an unchanged tree shows ManifestRequests
// advancing while PackageRequests stands still — the delta pass at work.
type ServeStats struct {
	ListingRequests  uint64 `json:"listing_requests"`
	ManifestRequests uint64 `json:"manifest_requests"`
	HdlistRequests   uint64 `json:"hdlist_requests"`
	PackageRequests  uint64 `json:"package_requests"`
	PackageBytes     int64  `json:"package_bytes"`
	NotFound         uint64 `json:"not_found"`
}

// Server serves a distribution read-only over HTTP and counts traffic:
//
//	GET {prefix}/RedHat/RPMS/             → newline-separated package listing
//	GET {prefix}/RedHat/RPMS/<file>.rpm   → the package in its on-disk format
//	GET {prefix}/RedHat/base/hdlist       → "filename size" per line
//	GET {prefix}/RedHat/base/manifest     → "NVRA size digest source" per line
//	GET {prefix}/profiles/graph.dot       → the framework's graph (diagnostic)
//
// Replicating an installation web server is safe precisely because this is
// strictly read-only (§6.3 footnote) — and because packages carry manifest
// digests, *any* verified repository can serve the same endpoints: the relay
// role (NewRepoServer) is a completed node re-serving its install tree to
// peers.
type Server struct {
	// repo resolves the served repository at request time. A server built
	// from a Distribution reads through it, so rebinding the distribution
	// in place (the §3.3 upgrade flow) is immediately visible; a relay
	// server (NewRepoServer) serves one fixed repository.
	repo func() *rpm.Repository
	mux  *http.ServeMux

	listing  atomic.Uint64
	manifest atomic.Uint64
	hdlist   atomic.Uint64
	packages atomic.Uint64
	bytes    atomic.Int64
	notFound atomic.Uint64
}

// NewServer builds the read-only HTTP server for a distribution, including
// the framework graph diagnostic endpoint.
func NewServer(d *Distribution) *Server {
	s := newServer(func() *rpm.Repository { return d.Repo })
	s.mux.HandleFunc("/profiles/graph.dot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		io.WriteString(w, d.Framework.DOT())
	})
	return s
}

// NewRepoServer builds the read-only HTTP server for a bare repository: the
// relay server role. A node that finished installing re-serves its
// digest-verified package tree at the same RPMS/manifest endpoints the
// frontend uses, so installers can fetch from it interchangeably (peers are
// trustless — every body is verified against the frontend's manifest).
func NewRepoServer(repo *rpm.Repository) *Server {
	return newServer(func() *rpm.Repository { return repo })
}

func newServer(repo func() *rpm.Repository) *Server {
	s := &Server{repo: repo, mux: http.NewServeMux()}
	s.mux.HandleFunc("/RedHat/RPMS/", s.serveRPMS)
	s.mux.HandleFunc("/RedHat/base/hdlist", s.serveHdlist)
	s.mux.HandleFunc("/RedHat/base/manifest", s.serveManifest)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// RegisterMetrics exposes the serving counters on the cluster's metrics
// registry — the /admin/diststats "serve" block, scrapeable. A delta
// re-mirror shows rocks_dist_manifest_requests_total advancing while
// rocks_dist_package_requests_total stands still.
func (s *Server) RegisterMetrics(r *metrics.Registry) {
	counter := func(name, help string, v *atomic.Uint64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("rocks_dist_listing_requests_total", "RedHat/RPMS/ directory listings served.", &s.listing)
	counter("rocks_dist_manifest_requests_total", "Digest manifests served.", &s.manifest)
	counter("rocks_dist_hdlist_requests_total", "hdlist files served.", &s.hdlist)
	counter("rocks_dist_package_requests_total", "Package bodies served.", &s.packages)
	counter("rocks_dist_not_found_total", "Requests for packages the tree does not hold.", &s.notFound)
	r.CounterFunc("rocks_dist_package_bytes_total", "Package body bytes served.",
		func() float64 { return float64(s.bytes.Load()) })
	r.GaugeFunc("rocks_dist_packages", "Packages in the served distribution.",
		func() float64 { return float64(len(s.repo().All())) })
}

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		ListingRequests:  s.listing.Load(),
		ManifestRequests: s.manifest.Load(),
		HdlistRequests:   s.hdlist.Load(),
		PackageRequests:  s.packages.Load(),
		PackageBytes:     s.bytes.Load(),
		NotFound:         s.notFound.Load(),
	}
}

func (s *Server) serveRPMS(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/RedHat/RPMS/")
	if rest == "" {
		s.listing.Add(1)
		var names []string
		for _, p := range s.repo().All() {
			// Escape each name so the listing stays one token per line even
			// for filenames carrying spaces or reserved URL characters, and
			// so the client can use entries verbatim as URL path segments.
			names = append(names, url.PathEscape(p.Filename()))
		}
		sort.Strings(names)
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, strings.Join(names, "\n")+"\n")
		return
	}
	meta, err := rpm.ParseFilename(rest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p := s.repo().Get(meta.NVRA())
	if p == nil {
		s.notFound.Add(1)
		http.NotFound(w, r)
		return
	}
	s.packages.Add(1)
	w.Header().Set("Content-Type", "application/x-rpm")
	n, err := p.WriteTo(w)
	s.bytes.Add(n)
	if err != nil {
		// Connection-level failure; nothing recoverable server-side.
		return
	}
}

func (s *Server) serveHdlist(w http.ResponseWriter, r *http.Request) {
	// The hdlist gives installers package sizes up front (progress
	// accounting) without fetching payloads: "filename size" per line.
	s.hdlist.Add(1)
	var lines []string
	for _, p := range s.repo().All() {
		lines = append(lines, fmt.Sprintf("%s %d", p.Filename(), p.Size))
	}
	sort.Strings(lines)
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, strings.Join(lines, "\n")+"\n")
}

func (s *Server) serveManifest(w http.ResponseWriter, r *http.Request) {
	s.manifest.Add(1)
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, FormatManifest(Manifest(s.repo())))
}

// Handler serves a distribution read-only over HTTP. Callers that want the
// traffic counters use NewServer directly; Handler remains for the common
// fire-and-forget case.
func Handler(d *Distribution) http.Handler { return NewServer(d) }

// mirrorDefaultClient bounds every mirror fetch the way the installer's
// default client does (60 s): falling back to http.DefaultClient would let
// one hung package fetch wedge a replication pass forever.
var mirrorDefaultClient = &http.Client{Timeout: 60 * time.Second}

// MirrorOptions tunes a replication pass. The zero value is a sensible
// production default.
type MirrorOptions struct {
	// Client performs the fetches; nil means a shared 60-second-timeout
	// client (never the timeout-less http.DefaultClient).
	Client *http.Client
	// Workers bounds concurrent package fetches; <= 0 means 8 — enough to
	// keep a campus→department link busy without stampeding the parent.
	Workers int
	// Retries is the attempt budget per file (including the first); <= 0
	// means 3. Only transport errors, 5xx responses, and digest-mismatched
	// bodies are retried.
	Retries int
	// RetryBackoff is the wait before the second attempt, doubling per
	// attempt; <= 0 means 100ms.
	RetryBackoff time.Duration
	// Baseline, when set, turns the pass into a delta: packages whose
	// manifest digest matches a baseline package (a previous mirror of the
	// same parent, or a tree loaded with ReadTree) are reused by reference
	// and their bodies are never fetched — the paper's "pay only for what
	// changed" update pass. Requires the parent to serve a digest manifest;
	// without one the pass silently falls back to a full fetch.
	Baseline *rpm.Repository
	// Context, when set, cancels the pass: in-flight fetches abort and
	// retry backoffs cut short, so the pass returns within one backoff
	// step of cancellation instead of grinding through its budget against
	// a parent that will never answer. Nil means Background.
	Context context.Context
}

// MirrorReport accounts for one replication pass: what the parent
// advertised, what the baseline already had, what was actually transferred,
// and how many bodies were digest-verified (and how many arrived corrupt
// and were retried).
type MirrorReport struct {
	// Listed counts packages the parent advertises.
	Listed int `json:"listed"`
	// Skipped counts packages reused from the baseline because their digest
	// already matched — no body fetched.
	Skipped int `json:"skipped"`
	// Fetched counts package bodies transferred, and FetchedBytes their
	// total serialized size.
	Fetched      int   `json:"fetched"`
	FetchedBytes int64 `json:"fetched_bytes"`
	// Verified counts fetched bodies checked against a manifest digest.
	Verified int `json:"verified"`
	// CorruptBodies counts bodies that arrived failing their digest check
	// and were discarded; each costs one retry from the per-file budget.
	CorruptBodies int `json:"corrupt_bodies"`
	// ManifestUsed reports whether the parent served a digest manifest;
	// false means a legacy listing-only parent (no delta, no verification).
	ManifestUsed bool `json:"manifest_used"`
	// Duration is how long the pass took.
	Duration time.Duration `json:"duration"`
}

// Summary renders the one-line report rocks-dist prints after a pass.
func (r MirrorReport) Summary() string {
	s := fmt.Sprintf("rocks-dist: mirrored %d packages: %d unchanged (skipped), %d fetched (%d bytes), %d verified",
		r.Listed, r.Skipped, r.Fetched, r.FetchedBytes, r.Verified)
	if r.CorruptBodies > 0 {
		s += fmt.Sprintf(", %d corrupt bodies retried", r.CorruptBodies)
	}
	if !r.ManifestUsed {
		s += " (parent serves no manifest: full fetch, unverified)"
	}
	return s + fmt.Sprintf(", in %v", r.Duration)
}

// Mirror replicates a served distribution's packages into a local
// repository — the wget step of Figure 6 — with default options. baseURL
// addresses the Handler root (e.g. "http://10.1.1.1/dist"). The returned
// repository's packages carry the mirror's name as provenance.
func Mirror(client *http.Client, baseURL, name string) (*rpm.Repository, error) {
	return MirrorWith(baseURL, name, MirrorOptions{Client: client})
}

// MirrorWith replicates a served distribution with explicit options,
// discarding the traffic report. See MirrorReportWith.
func MirrorWith(baseURL, name string, opts MirrorOptions) (*rpm.Repository, error) {
	repo, _, err := MirrorReportWith(baseURL, name, opts)
	return repo, err
}

// mirrorItem is one package body the worker pool must fetch.
type mirrorItem struct {
	escaped string // listing entry / escaped URL path segment
	file    string // decoded filename, for errors and reports
	digest  string // expected payload digest ("" = parent has no manifest)
}

// MirrorReportWith replicates a served distribution with explicit options.
// Packages are fetched by a bounded worker pool with per-file retries, so
// replication scales with package count (§6.2.3) instead of serializing on
// round trips, and a single bad file fails the pass with an error naming
// the file. When the parent serves a digest manifest every fetched body is
// verified against it — a mismatch counts as transient and is retried, then
// fails naming the file — and a Baseline turns the pass into a delta that
// fetches only packages whose digest is missing or changed.
func MirrorReportWith(baseURL, name string, opts MirrorOptions) (*rpm.Repository, MirrorReport, error) {
	start := time.Now()
	var report MirrorReport
	client := opts.Client
	if client == nil {
		client = mirrorDefaultClient
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 8
	}
	attempts := opts.Retries
	if attempts <= 0 {
		attempts = 3
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	baseURL = strings.TrimSuffix(baseURL, "/")
	listURL := baseURL + "/RedHat/RPMS/"

	// Prefer the digest manifest; fall back to the plain listing for
	// pre-manifest parents (full fetch, no verification, no delta).
	var entries []ManifestEntry
	if body, err := fetchWithRetry(ctx, client, baseURL+"/RedHat/base/manifest", attempts, backoff); err == nil {
		if parsed, perr := ParseManifest(body); perr == nil {
			entries, report.ManifestUsed = parsed, true
		}
	}

	repo := rpm.NewRepository(name)
	var items []mirrorItem
	if report.ManifestUsed {
		report.Listed = len(entries)
		for _, e := range entries {
			file := e.NVRA + ".rpm"
			if e.Digest != "" && opts.Baseline != nil {
				if base := opts.Baseline.Get(e.NVRA); base != nil && base.EnsureDigest() == e.Digest {
					// Unchanged content: inherit by reference (a shallow copy
					// so restamping provenance cannot mutate the baseline).
					reused := *base
					reused.Source = name
					repo.Add(&reused)
					report.Skipped++
					continue
				}
			}
			items = append(items, mirrorItem{escaped: url.PathEscape(file), file: file, digest: e.Digest})
		}
	} else {
		listing, err := fetchWithRetry(ctx, client, listURL, attempts, backoff)
		if err != nil {
			return nil, report, fmt.Errorf("dist: mirroring %s: %w", listURL, err)
		}
		for _, entry := range strings.Fields(string(listing)) {
			file, err := url.PathUnescape(entry)
			if err != nil {
				file = entry // tolerate a raw legacy listing
			}
			items = append(items, mirrorItem{escaped: entry, file: file})
		}
		report.Listed = len(items) + report.Skipped
	}

	// Fetch into a listing-indexed slice so the result is deterministic
	// regardless of worker interleaving; the first failing file (in listing
	// order) wins the error.
	pkgs := make([]*rpm.Package, len(items))
	errs := make([]error, len(items))
	var failed atomic.Bool
	var next atomic.Int64
	var fetchedBytes atomic.Int64
	var corrupt atomic.Int64
	if workers > len(items) {
		workers = len(items)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				it := items[i]
				p, err := fetchPackage(ctx, client, listURL+it.escaped, it, attempts, backoff, &fetchedBytes, &corrupt)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				p.Source = name
				pkgs[i] = p
			}
		}()
	}
	wg.Wait()
	report.CorruptBodies = int(corrupt.Load())
	report.FetchedBytes = fetchedBytes.Load()
	for _, e := range errs {
		if e != nil {
			return nil, report, e
		}
	}
	// No error recorded means every index was claimed and filled.
	for i, p := range pkgs {
		repo.Add(p)
		report.Fetched++
		if items[i].digest != "" {
			report.Verified++
		}
	}
	report.Duration = time.Since(start)
	return repo, report, nil
}

// fetchPackage downloads and decodes one RPM with bounded retries, checking
// its payload digest against the manifest when one is known. Errors always
// name the file, so an administrator knows exactly which package stalled a
// replication pass — or which one keeps arriving corrupt.
func fetchPackage(ctx context.Context, client *http.Client, pkgURL string, it mirrorItem, attempts int, backoff time.Duration, fetchedBytes, corrupt *atomic.Int64) (*rpm.Package, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if !sleepCtx(ctx, backoff) {
				break
			}
			backoff *= 2
		}
		resp, err := getCtx(ctx, client, pkgURL)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("dist: fetching %s: %w", it.file, ctx.Err())
			}
			lastErr = fmt.Errorf("dist: fetching %s: %w", it.file, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("dist: fetching %s: HTTP %s", it.file, resp.Status)
			if resp.StatusCode < 500 {
				return nil, lastErr // 4xx will not heal on retry
			}
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("dist: fetching %s: %w", it.file, err)
			continue
		}
		p, err := rpm.Read(bytes.NewReader(body))
		if err != nil {
			// A decode failure (torn tar, embedded-digest mismatch) is a
			// corrupted transfer: transient, retried.
			corrupt.Add(1)
			lastErr = fmt.Errorf("dist: decoding %s: %w", it.file, err)
			continue
		}
		if p.Filename() != it.file {
			// The body decoded but identifies as a different package — a
			// substituted file, or a bit flip in the metadata region that
			// the payload digest cannot see.
			corrupt.Add(1)
			lastErr = fmt.Errorf("dist: verifying %s: fetched body identifies as %s", it.file, p.Filename())
			continue
		}
		if it.digest != "" && p.EnsureDigest() != it.digest {
			// The body is a self-consistent package but not the advertised
			// one — a flipped bit that survived decoding, or a substituted
			// file. The manifest is the source of truth.
			corrupt.Add(1)
			lastErr = fmt.Errorf("dist: verifying %s: payload digest does not match the parent manifest", it.file)
			continue
		}
		fetchedBytes.Add(int64(len(body)))
		return p, nil
	}
	return nil, fmt.Errorf("dist: giving up after %d attempts: %w", attempts, lastErr)
}

// fetchWithRetry reads one URL's body with the same retry policy as
// package fetches (the listing itself can hit a loaded parent).
func fetchWithRetry(ctx context.Context, client *http.Client, url string, attempts int, backoff time.Duration) ([]byte, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if !sleepCtx(ctx, backoff) {
				break
			}
			backoff *= 2
		}
		resp, err := getCtx(ctx, client, url)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			lastErr = fmt.Errorf("HTTP %s", resp.Status)
			if resp.StatusCode < 500 {
				return nil, lastErr
			}
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	return nil, lastErr
}

// getCtx is client.Get bound to the pass's context, so cancellation aborts
// an in-flight request instead of waiting out the client timeout.
func getCtx(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// sleepCtx waits out a retry backoff unless the context ends first; it
// reports whether the retry should proceed. This is what bounds an aborted
// pass to one backoff step: cancellation cuts the sleep short instead of
// letting the doubling schedule run to completion.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

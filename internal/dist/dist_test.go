package dist

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

func v(ver, rel string) rpm.Version { return rpm.Version{Version: ver, Release: rel} }

func TestBuildKeepsNewestVersion(t *testing.T) {
	base := rpm.NewRepository("base")
	base.Add(rpm.New("glibc", v("2.2.4", "13"), rpm.ArchI386))
	base.Add(rpm.New("bash", v("2.05", "8"), rpm.ArchI386))
	updates := rpm.NewRepository("updates")
	updates.Add(rpm.New("glibc", v("2.2.4", "24"), rpm.ArchI386))

	d := Build("test", kickstart.NewFramework(),
		Source{"base", base}, Source{"updates", updates})
	if d.Report.Considered != 3 || d.Report.Included != 2 {
		t.Errorf("report = %+v", d.Report)
	}
	got := d.Repo.Newest("glibc", rpm.ArchI386)
	if got == nil || got.Version.Release != "24" {
		t.Errorf("glibc = %v, want release 24 (the update)", got)
	}
	if len(d.Report.Superseded) != 1 || d.Report.Superseded[0] != "glibc-2.2.4-13.i386" {
		t.Errorf("superseded = %v", d.Report.Superseded)
	}
}

func TestBuildLaterSourceWinsTies(t *testing.T) {
	a := rpm.NewRepository("a")
	pa := rpm.New("tool", v("1.0", "1"), rpm.ArchI386, rpm.FileEntry{Path: "/t", Data: []byte("old")})
	a.Add(pa)
	b := rpm.NewRepository("b")
	pb := rpm.New("tool", v("1.0", "1"), rpm.ArchI386, rpm.FileEntry{Path: "/t", Data: []byte("rebuilt")})
	b.Add(pb)
	d := Build("test", kickstart.NewFramework(), Source{"a", a}, Source{"b", b})
	got := d.Repo.Newest("tool", rpm.ArchI386)
	if string(got.Files[0].Data) != "rebuilt" {
		t.Error("same-NVRA package from a later source should win")
	}
}

func TestBuildSeparatesArches(t *testing.T) {
	base := rpm.NewRepository("base")
	base.Add(rpm.New("kernel", v("2.4.9", "31"), rpm.ArchI386))
	base.Add(rpm.New("kernel", v("2.4.9", "31"), rpm.ArchAthlon))
	d := Build("test", kickstart.NewFramework(), Source{"base", base})
	if d.Report.Included != 2 {
		t.Errorf("Included = %d; per-arch packages must both survive", d.Report.Included)
	}
}

func TestSyntheticRedHatCoversDefaultFramework(t *testing.T) {
	repo := SyntheticRedHat()
	fw := kickstart.DefaultFramework()
	for _, arch := range []string{"i386", "athlon"} {
		p, err := fw.Generate(kickstart.Request{Appliance: "compute", Arch: arch, NodeName: "n",
			Attrs: kickstart.DefaultAttrs("u", "h")})
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := repo.Resolve(arch, p.Packages)
		if err != nil {
			t.Fatalf("arch %s: %v", arch, err)
		}
		if len(pkgs) < len(p.Packages) {
			t.Errorf("arch %s: resolved %d < requested %d", arch, len(pkgs), len(p.Packages))
		}
	}
	// Frontend must also resolve.
	p, err := fw.Generate(kickstart.Request{Appliance: "frontend", Arch: "i386", NodeName: "fe",
		Attrs: kickstart.DefaultAttrs("u", "h")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Resolve("i386", p.Packages); err != nil {
		t.Errorf("frontend resolve: %v", err)
	}
}

// TestSyntheticComputeTransfersPaperBytes pins the compute appliance
// download at Table I's measured ~225 MB.
func TestSyntheticComputeTransfersPaperBytes(t *testing.T) {
	repo := SyntheticRedHat()
	fw := kickstart.DefaultFramework()
	p, _ := fw.Generate(kickstart.Request{Appliance: "compute", Arch: "i386", NodeName: "n",
		Attrs: kickstart.DefaultAttrs("u", "h")})
	pkgs, err := repo.Resolve("i386", p.Packages)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, pk := range pkgs {
		sum += pk.Size
	}
	want := int64(ComputeTransferBytes)
	tol := want / 100 // scaling rounds per package; stay within 1%
	if sum < want-tol || sum > want+tol {
		t.Errorf("compute transfer = %d bytes, want %d ±1%%", sum, want)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticRedHat()
	b := SyntheticRedHat()
	if a.Len() != b.Len() {
		t.Fatalf("package counts differ: %d vs %d", a.Len(), b.Len())
	}
	for _, p := range a.All() {
		q := b.Get(p.NVRA())
		if q == nil {
			t.Fatalf("package %s missing on second generation", p.NVRA())
		}
		if q.Size != p.Size {
			t.Errorf("%s size differs: %d vs %d", p.Name, p.Size, q.Size)
		}
	}
}

func TestGenerateUpdatesBumpReleases(t *testing.T) {
	base := SyntheticRedHat()
	updates := GenerateUpdates(base, 124, 1) // §6.2.1: 124 updates in a year
	if updates.Len() != 124 {
		t.Fatalf("generated %d updates, want 124", updates.Len())
	}
	for _, up := range updates.All() {
		orig := base.Versions(up.Name)
		if len(orig) == 0 {
			t.Fatalf("update for unknown package %s", up.Name)
		}
		if rpm.Compare(up.Version, orig[0].Version) <= 0 {
			t.Errorf("update %s is not newer than base %s", up.NVRA(), orig[0].NVRA())
		}
	}
	// Applying the updates must supersede exactly the updated names.
	d := Build("updated", kickstart.NewFramework(),
		Source{"base", base}, Source{"updates", updates})
	if len(d.Report.Superseded) == 0 {
		t.Error("updates superseded nothing")
	}
	for _, up := range updates.All() {
		got := d.Repo.Newest(up.Name, up.Arch)
		if rpm.Compare(got.Version, up.Version) < 0 {
			t.Errorf("%s: dist has %s, update was %s", up.Name, got.Version, up.Version)
		}
	}
}

func TestBuildChildLinksParentPackages(t *testing.T) {
	base := SyntheticRedHat()
	parent := Build("npaci-rocks", kickstart.DefaultFramework(), Source{"redhat", base})

	local := rpm.NewRepository("campus-local")
	local.Add(rpm.New("campus-licensed-app", v("3.1", "2"), rpm.ArchI386))
	child := BuildChild("campus", parent, nil, Source{"campus-local", local})

	if child.Parent != "npaci-rocks" {
		t.Errorf("Parent = %q", child.Parent)
	}
	if child.Report.Copied != 1 {
		t.Errorf("Copied = %d, want 1 (only the local package)", child.Report.Copied)
	}
	if child.Report.Linked != parent.Repo.Len() {
		t.Errorf("Linked = %d, want %d", child.Report.Linked, parent.Repo.Len())
	}
	// The derived distribution is lightweight: copied bytes are only the
	// local package (the paper's ~25 MB for a real site; here one package).
	if child.Report.CopiedBytes >= parent.Repo.TotalSize()/10 {
		t.Errorf("child copied %d bytes; should be far smaller than the parent's %d",
			child.Report.CopiedBytes, parent.Repo.TotalSize())
	}
	if child.Repo.Newest("campus-licensed-app", rpm.ArchI386) == nil {
		t.Error("local package missing from child")
	}
	if child.Repo.Newest("glibc", rpm.ArchI386) == nil {
		t.Error("inherited package missing from child")
	}
	if child.Lineage() != "npaci-rocks -> campus" {
		t.Errorf("Lineage = %q", child.Lineage())
	}
}

func TestBuildChildFrameworkIsolation(t *testing.T) {
	parent := Build("parent", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	child := BuildChild("child", parent, nil)
	child.Framework.AddNode(&kickstart.NodeFile{Name: "dept-extras",
		Packages: []kickstart.PackageRef{{Name: "campus-licensed-app"}}})
	child.Framework.Graph.AddEdge("compute", "dept-extras")
	if _, ok := parent.Framework.Nodes["dept-extras"]; ok {
		t.Error("child framework edit leaked into parent")
	}
}

func TestHierarchyThreeLevels(t *testing.T) {
	// Figure 6: NPACI → campus → department.
	npaci := Build("npaci", kickstart.DefaultFramework(),
		Source{"redhat", SyntheticRedHat()}, Source{"rocks-local", LocalRocksPackages()})
	campusLocal := rpm.NewRepository("campus-rpms")
	campusLocal.Add(rpm.New("campus-app", v("1.0", "1"), rpm.ArchI386))
	campus := BuildChild("campus", npaci, nil, Source{"campus-rpms", campusLocal})
	deptLocal := rpm.NewRepository("dept-rpms")
	deptLocal.Add(rpm.New("dept-app", v("0.9", "3"), rpm.ArchI386))
	dept := BuildChild("department", campus, nil, Source{"dept-rpms", deptLocal})

	for _, name := range []string{"glibc", "campus-app", "dept-app", "rocks-tools"} {
		found := false
		for _, p := range dept.Repo.Versions(name) {
			_ = p
			found = true
		}
		if !found {
			t.Errorf("department dist missing %s", name)
		}
	}
	if dept.Report.Copied != 1 {
		t.Errorf("department copied %d packages, want 1", dept.Report.Copied)
	}
}

func TestResolveProfile(t *testing.T) {
	d := Build("dist", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	profile, err := d.Framework.Generate(kickstart.Request{Appliance: "compute", Arch: "i386",
		NodeName: "compute-0-0", Attrs: kickstart.DefaultAttrs("u", "h")})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := d.ResolveProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(profile.Packages) {
		t.Errorf("resolved %d packages for %d requested", len(pkgs), len(profile.Packages))
	}
}

func TestResolveProfileMissingPackage(t *testing.T) {
	fw := kickstart.NewFramework()
	fw.AddNode(&kickstart.NodeFile{Name: "compute",
		Packages: []kickstart.PackageRef{{Name: "no-such-package"}}})
	d := Build("dist", fw, Source{"redhat", SyntheticRedHat()})
	profile, err := d.Framework.Generate(kickstart.Request{Appliance: "compute", Arch: "i386"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ResolveProfile(profile); err == nil ||
		!strings.Contains(err.Error(), "no-such-package") {
		t.Errorf("want missing-package error, got %v", err)
	}
}

func TestHTTPServeAndMirror(t *testing.T) {
	parent := Build("npaci", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	srv := httptest.NewServer(Handler(parent))
	defer srv.Close()

	mirrored, err := Mirror(srv.Client(), srv.URL, "mirror-of-npaci")
	if err != nil {
		t.Fatal(err)
	}
	if mirrored.Len() != parent.Repo.Len() {
		t.Fatalf("mirrored %d packages, parent has %d", mirrored.Len(), parent.Repo.Len())
	}
	// Spot-check payload fidelity.
	for _, name := range []string{"glibc", "dhcp", "mpich"} {
		orig := parent.Repo.Newest(name, rpm.ArchI386)
		got := mirrored.Get(orig.NVRA())
		if got == nil {
			t.Fatalf("mirror missing %s", orig.NVRA())
		}
		if got.Source != "mirror-of-npaci" {
			t.Errorf("mirrored provenance = %q", got.Source)
		}
		if len(got.Files) != len(orig.Files) {
			t.Errorf("%s payload file count differs", name)
		}
	}
	// The mirror can seed a child build — the full Figure 6 flow over HTTP.
	child := Build("campus", parent.Framework.Clone(), Source{"mirror-of-npaci", mirrored})
	if child.Repo.Len() != parent.Repo.Len() {
		t.Error("child from mirror lost packages")
	}
}

func TestHTTPHandlerErrors(t *testing.T) {
	d := Build("d", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/RedHat/RPMS/ghost-1.0-1.i386.rpm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("missing package: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/RedHat/RPMS/garbage")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad filename: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/profiles/graph.dot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("graph.dot: HTTP %d", resp.StatusCode)
	}
}

func TestBuildReportSummary(t *testing.T) {
	d := Build("d", kickstart.NewFramework())
	s := d.Report.Summary()
	if !strings.Contains(s, "rocks-dist:") {
		t.Errorf("summary = %q", s)
	}
}

// Property: rebuilding a distribution from its own output is a fixed point
// — rocks-dist is idempotent, which is what makes "a Rocks distribution can
// be run through the identical process" (§6.2.2) safe.
func TestPropertyBuildIdempotent(t *testing.T) {
	base := SyntheticRedHat()
	updates := GenerateUpdates(base, 40, 7)
	first := Build("gen1", kickstart.DefaultFramework(),
		Source{"base", base}, Source{"updates", updates})
	second := Build("gen2", first.Framework,
		Source{"gen1", first.Repo})
	if first.Repo.Len() != second.Repo.Len() {
		t.Fatalf("package count changed: %d -> %d", first.Repo.Len(), second.Repo.Len())
	}
	for _, p := range first.Repo.All() {
		q := second.Repo.Get(p.NVRA())
		if q == nil {
			t.Errorf("%s lost in rebuild", p.NVRA())
		}
	}
	if len(second.Report.Superseded) != 0 {
		t.Errorf("rebuild superseded %v; nothing should be newer", second.Report.Superseded)
	}
}

// TestMirrorParallelWorkers: a wide worker pool must produce exactly the
// same repository as the serial mirror.
func TestMirrorParallelWorkers(t *testing.T) {
	parent := Build("npaci", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	srv := httptest.NewServer(Handler(parent))
	defer srv.Close()

	mirrored, err := MirrorWith(srv.URL, "wide", MirrorOptions{Client: srv.Client(), Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if mirrored.Len() != parent.Repo.Len() {
		t.Fatalf("mirrored %d packages, parent has %d", mirrored.Len(), parent.Repo.Len())
	}
	for _, orig := range parent.Repo.All() {
		if mirrored.Get(orig.NVRA()) == nil {
			t.Fatalf("parallel mirror missing %s", orig.NVRA())
		}
	}
}

// TestMirrorRetriesTransientErrors: each package download 500s once before
// succeeding; the retry loop must absorb that without failing the pass.
func TestMirrorRetriesTransientErrors(t *testing.T) {
	parent := Build("npaci", kickstart.DefaultFramework(), Source{"redhat", SyntheticRedHat()})
	inner := Handler(parent)
	var mu sync.Mutex
	failedOnce := map[string]bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ".rpm") {
			mu.Lock()
			first := !failedOnce[r.URL.Path]
			failedOnce[r.URL.Path] = true
			mu.Unlock()
			if first {
				http.Error(w, "transient", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	mirrored, err := MirrorWith(srv.URL, "flaky", MirrorOptions{
		Client: srv.Client(), Workers: 4, Retries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if mirrored.Len() != parent.Repo.Len() {
		t.Fatalf("mirrored %d packages, parent has %d", mirrored.Len(), parent.Repo.Len())
	}
}

// TestMirrorErrorNamesFile: when a package never becomes fetchable the error
// must identify the file and the retry budget, not just say "HTTP 500".
func TestMirrorErrorNamesFile(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/RedHat/RPMS/") {
			io.WriteString(w, "ghost-1.0-1.i386.rpm\n")
			return
		}
		http.Error(w, "broken", http.StatusInternalServerError)
	}))
	defer srv.Close()

	_, err := MirrorWith(srv.URL, "doomed", MirrorOptions{
		Client: srv.Client(), Retries: 2, RetryBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("mirror of an unfetchable package should fail")
	}
	if !strings.Contains(err.Error(), "ghost-1.0-1.i386.rpm") {
		t.Errorf("error does not name the failing file: %v", err)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error does not mention the retry budget: %v", err)
	}
}

// TestMirrorClientFailFastOn404: a 4xx is a permanent condition — the
// fetcher must not burn its retry budget on it.
func TestMirrorFailFastOn404(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/RedHat/RPMS/") {
			io.WriteString(w, "gone-1.0-1.i386.rpm\n")
			return
		}
		// Count only package fetches: the manifest probe 404ing here is the
		// legitimate fallback to the raw listing, not a retry.
		if strings.HasSuffix(r.URL.Path, ".rpm") {
			hits.Add(1)
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	_, err := MirrorWith(srv.URL, "gone", MirrorOptions{
		Client: srv.Client(), Retries: 5, RetryBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("want error")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("404 fetched %d times, want 1 (no retries on 4xx)", got)
	}
}

// TestMirrorDefaultClientBounded: with no client supplied, Mirror must use
// a timeout-bearing client, never the unbounded http.DefaultClient.
func TestMirrorDefaultClientBounded(t *testing.T) {
	if mirrorDefaultClient.Timeout == 0 {
		t.Fatal("default mirror client has no timeout")
	}
}

package dist

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMirrorCancelReturnsWithinOneBackoff is the regression test for the
// uncancellable retry loop: against a parent that answers every package
// fetch with a 500 and a deliberately enormous retry schedule, cancelling
// the pass's context must abort it within one backoff step — not leave it
// grinding through the budget long after the cluster shut down.
func TestMirrorCancelReturnsWithinOneBackoff(t *testing.T) {
	firstFetch := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/RedHat/base/manifest"):
			http.NotFound(w, r) // legacy parent: listing-only pass
		case strings.HasSuffix(r.URL.Path, "/RedHat/RPMS/"):
			io.WriteString(w, "ghost-1.0-1.i386.rpm\n")
		default:
			once.Do(func() { close(firstFetch) })
			http.Error(w, "permanently broken", http.StatusInternalServerError)
		}
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// An hour of backoff and a deep budget: if cancellation does not cut
		// the sleep short, this pass cannot return inside the test deadline.
		_, err := MirrorWith(srv.URL, "doomed", MirrorOptions{
			Client: srv.Client(), Retries: 10, RetryBackoff: time.Hour, Context: ctx,
		})
		done <- err
	}()

	select {
	case <-firstFetch:
	case <-time.After(30 * time.Second):
		t.Fatal("mirror never attempted a package fetch")
	}
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled pass reported success")
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("cancelled pass took %v to return; want within one backoff step", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled mirror pass still running: retry loop ignored its context")
	}
}

package dist

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

// This file synthesizes the "Red Hat 7.2 plus updates" software universe
// the paper installs from. We cannot ship Red Hat's packages, so we
// generate packages with the same observable properties: the names the
// default Rocks framework references, plausible versions, and sizes whose
// compute-appliance sum matches the paper's measured transfer of ~225 MB
// per reinstalling node (Table I).

// ComputeTransferBytes is the per-node download the paper measured:
// "Each node transfers approximately 225 MB of data from the server."
const ComputeTransferBytes = 225 << 20

// SyntheticRedHat builds the stock distribution repository: every package
// the default framework references on any architecture, plus the Rocks and
// community packages. Sizes are deterministic per package name and scaled
// so the i386 compute appliance sums to ComputeTransferBytes.
func SyntheticRedHat() *rpm.Repository {
	repo := rpm.NewRepository("redhat-7.2")
	fw := kickstart.DefaultFramework()

	// Collect every package name any node file references.
	type pkgInfo struct {
		name string
		arch string
	}
	var all []pkgInfo
	seen := map[string]bool{}
	for _, nf := range fw.Nodes {
		for _, p := range nf.Packages {
			if seen[p.Name] {
				continue
			}
			seen[p.Name] = true
			arch := rpm.ArchI386
			switch p.Name {
			case "myrinet-gm-src":
				arch = rpm.ArchSRPM
			case "rocks-release", "rocks-tools", "rocks-dist", "maui", "rexec", "ekv", "atlas":
				arch = rpm.ArchNoarch
			}
			all = append(all, pkgInfo{p.Name, arch})
		}
	}

	// First pass: raw deterministic sizes.
	raw := make(map[string]int64, len(all))
	for _, pi := range all {
		raw[pi.name] = rawSize(pi.name)
	}
	// Scale so the compute/i386 package set totals ComputeTransferBytes.
	profile, err := fw.Generate(kickstart.Request{
		Appliance: "compute", Arch: "i386", NodeName: "scale",
		Attrs: kickstart.DefaultAttrs("http://frontend/dist", "frontend"),
	})
	if err != nil {
		panic("dist: default framework does not generate: " + err.Error())
	}
	var sum int64
	for _, name := range profile.Packages {
		sum += raw[name]
	}
	scale := float64(ComputeTransferBytes) / float64(sum)

	for _, pi := range all {
		size := int64(float64(raw[pi.name]) * scale)
		if size < 1024 {
			size = 1024
		}
		repo.Add(synthPackage(pi.name, pi.arch, size))
		// Red Hat 7.2 shipped per-architecture builds; the Meteor cluster's
		// IA-64 nodes install from the same distribution (§6.1), so every
		// architecture-specific package also exists as an ia64 build.
		// (Athlon nodes use the i386 packages via the compatibility
		// ladder, as real RPM does.)
		if pi.arch == rpm.ArchI386 {
			repo.Add(synthPackage(pi.name, rpm.ArchIA64, size))
		}
	}
	return repo
}

// rawSize derives a deterministic, plausibly distributed package size from
// the name: most packages are a few hundred KB, a heavy tail (glibc,
// kernel, gcc) reaches tens of MB — mirroring a real distribution's mix.
func rawSize(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	// Log-normal-ish: 2^(17 + x) bytes with x in [0, 6).
	exp := 17 + r.Float64()*6
	size := int64(1) << int(exp)
	// Known heavyweights get a fixed boost so the distribution's shape
	// matches reality (kernel and glibc dominate the wire).
	switch name {
	case "kernel", "glibc", "gcc", "gcc-c++", "mpich", "perl", "python", "tk", "openssl":
		size *= 4
	case "man-pages", "words", "cracklib-dicts":
		size *= 2
	}
	return size
}

// synthPackage builds one synthetic package. The payload carries small
// marker files (a binary stub and a doc file); Size is set to the synthetic
// wire size rather than the payload length, which the installer and the
// timing model treat as the bytes transferred.
func synthPackage(name, arch string, size int64) *rpm.Package {
	ver := synthVersion(name)
	p := rpm.New(name, ver, arch,
		rpm.FileEntry{Path: "/usr/bin/" + name, Mode: 0o755,
			Data: []byte(fmt.Sprintf("#!synthetic binary for %s %s\n", name, ver))},
		rpm.FileEntry{Path: "/usr/share/doc/" + name + "/README", Mode: 0o644,
			Data: []byte(fmt.Sprintf("%s: synthetic package standing in for the Red Hat 7.2 RPM\n", name))},
	)
	p.Size = size
	p.Summary = "Synthetic stand-in for " + name
	if name == "myrinet-gm-src" {
		p.BuildRequires = []string{"gcc", "kernel"}
		p.PostScript = "rebuild-gm-driver"
	}
	return p
}

// synthVersion derives a stable version from the package name.
func synthVersion(name string) rpm.Version {
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(int64(h.Sum64()) ^ 0x5eed))
	return rpm.Version{
		Version: fmt.Sprintf("%d.%d.%d", 1+r.Intn(7), r.Intn(10), r.Intn(20)),
		Release: fmt.Sprintf("%d", 1+r.Intn(40)),
	}
}

// GenerateUpdates produces an updates repository of n security/bugfix
// updates against the given base: each update bumps the release of a
// deterministic-randomly chosen package. This models §6.2.1's measured
// cadence for Red Hat 6.2 — 124 updated packages in under a year, one
// every three days.
func GenerateUpdates(base *rpm.Repository, n int, seed int64) *rpm.Repository {
	updates := rpm.NewRepository("updates")
	r := rand.New(rand.NewSource(seed))
	names := base.Names()
	if len(names) == 0 || n <= 0 {
		return updates
	}
	bumped := map[string]int{}
	for i := 0; i < n; i++ {
		name := names[r.Intn(len(names))]
		vers := base.Versions(name)
		if len(vers) == 0 {
			continue
		}
		orig := vers[0] // newest, regardless of architecture
		bumped[name]++
		v := orig.Version
		v.Release = fmt.Sprintf("%s.%d", v.Release, bumped[name])
		up := synthPackage(name, orig.Arch, orig.Size)
		up.Version = v
		up.Summary = fmt.Sprintf("Security update %d for %s", bumped[name], name)
		updates.Add(up)
	}
	return updates
}

// LocalRocksPackages returns the NPACI-built packages a site layers on the
// mirror: the Rocks tools themselves plus kickstart profiles (§6.2.1's
// "Local software").
func LocalRocksPackages() *rpm.Repository {
	repo := rpm.NewRepository("rocks-local")
	for _, name := range []string{"rocks-release", "rocks-tools", "rocks-dist", "ekv", "rexec"} {
		p := synthPackage(name, rpm.ArchNoarch, rawSize(name))
		p.Source = "rocks-local"
		repo.Add(p)
	}
	return repo
}

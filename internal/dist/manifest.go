package dist

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"rocks/internal/rpm"
)

// Digest manifests. A distribution's manifest names every package by NVRA
// together with its size, SHA-256 payload digest, and provenance — one line
// per package:
//
//	name-version-release.arch <size> <digest> <source>
//
// The same format is served over HTTP (RedHat/base/manifest) and written to
// disk (the MANIFEST file of a materialized tree), so a mirror pass, a tree
// verification, and an installing node all check content against the same
// identity. Digests make the hierarchical update pass a delta: a child
// re-fetches only packages whose digest changed, in the spirit of the
// paper's inherit-by-reference symlink tree (§6.2.3).

// ManifestEntry describes one package in a manifest.
type ManifestEntry struct {
	NVRA   string
	Size   int64
	Digest string
	Source string
}

// Manifest builds the sorted manifest of a repository. Digests are computed
// (and stamped) for packages that were built in memory and never serialized.
func Manifest(repo *rpm.Repository) []ManifestEntry {
	var entries []ManifestEntry
	for _, p := range repo.All() {
		entries = append(entries, ManifestEntry{
			NVRA:   p.NVRA(),
			Size:   p.Size,
			Digest: p.EnsureDigest(),
			Source: p.Source,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].NVRA < entries[j].NVRA })
	return entries
}

// FormatManifest renders manifest lines, one entry per line, trailing
// newline included. An empty source is written as "-" so every line has
// exactly four fields. NVRA and source are path-escaped so a package name
// carrying whitespace cannot shear the whitespace-delimited line apart.
func FormatManifest(entries []ManifestEntry) string {
	var b strings.Builder
	for _, e := range entries {
		src := e.Source
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(&b, "%s %d %s %s\n", url.PathEscape(e.NVRA), e.Size, e.Digest, url.PathEscape(src))
	}
	return b.String()
}

// unescapeField undoes FormatManifest's escaping, tolerating unescaped
// legacy values (a stray % that is not a valid escape passes through raw).
func unescapeField(s string) string {
	if u, err := url.PathUnescape(s); err == nil {
		return u
	}
	return s
}

// ParseManifest parses manifest lines. The pre-digest three-field format
// ("NVRA size source") is still accepted — its entries carry an empty
// Digest, and consumers skip digest verification for them.
func ParseManifest(data []byte) ([]ManifestEntry, error) {
	var entries []ManifestEntry
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("dist: manifest line %d: %q has %d fields, want at least 3", ln+1, line, len(fields))
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: manifest line %d: bad size %q: %w", ln+1, fields[1], err)
		}
		e := ManifestEntry{NVRA: unescapeField(fields[0]), Size: size}
		if len(fields) >= 4 {
			e.Digest, e.Source = fields[2], unescapeField(fields[3])
		} else {
			// Legacy format: the third field is provenance, no digest.
			e.Source = unescapeField(fields[2])
		}
		if e.Source == "-" {
			e.Source = ""
		}
		entries = append(entries, e)
	}
	return entries, nil
}

package node

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rocks/internal/hardware"
	"rocks/internal/rpm"
)

func testNode() *Node {
	macs := hardware.NewMACAllocator()
	return New(hardware.PIIICompute(macs, 733))
}

func TestDiskPartitionRouting(t *testing.T) {
	d := NewDisk()
	d.Format("/")
	d.Format("/state/partition1")
	if err := d.WriteFile("/etc/hosts", []byte("hosts"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteFile("/state/partition1/data.bin", []byte("persist"), 0o644); err != nil {
		t.Fatal(err)
	}
	root, _ := d.Partition("/")
	state, _ := d.Partition("/state/partition1")
	if len(root.files) != 1 || len(state.files) != 1 {
		t.Errorf("routing wrong: root=%d state=%d", len(root.files), len(state.files))
	}
	got, err := d.ReadFile("/state/partition1/data.bin")
	if err != nil || string(got) != "persist" {
		t.Errorf("ReadFile = %q, %v", got, err)
	}
}

func TestDiskRootReformatPreservesStatePartition(t *testing.T) {
	// The §6.3 invariant: "all non-root partitions are preserved over
	// reinstalls, and therefore, can be used as persistent storage."
	d := NewDisk()
	d.Format("/")
	d.Format("/state/partition1")
	d.WriteFile("/etc/passwd", []byte("root"), 0o644)
	d.WriteFile("/state/partition1/results.dat", []byte("experiment output"), 0o644)

	d.Format("/")                          // reinstall wipes root...
	d.EnsurePartition("/state/partition1") // ...and only ensures the rest

	if _, err := d.ReadFile("/etc/passwd"); err == nil {
		t.Error("root file survived a reformat")
	}
	got, err := d.ReadFile("/state/partition1/results.dat")
	if err != nil || string(got) != "experiment output" {
		t.Errorf("persistent file lost: %q, %v", got, err)
	}
	root, _ := d.Partition("/")
	state, _ := d.Partition("/state/partition1")
	if root.Generation != 2 || state.Generation != 1 {
		t.Errorf("generations = %d, %d; want 2, 1", root.Generation, state.Generation)
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk()
	if err := d.WriteFile("relative/path", nil, 0); err == nil {
		t.Error("relative path accepted")
	}
	if err := d.WriteFile("/no/partition", nil, 0); err == nil {
		t.Error("write with no formatted partition accepted")
	}
	if _, err := d.ReadFile("/nope"); err == nil {
		t.Error("read with no partition accepted")
	}
	d.Format("/")
	if _, err := d.ReadFile("/missing"); err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing file error = %v", err)
	}
}

func TestDiskAppendAndList(t *testing.T) {
	d := NewDisk()
	d.Format("/")
	d.AppendFile("/etc/fstab", []byte("line1\n"))
	d.AppendFile("/etc/fstab", []byte("line2\n"))
	got, _ := d.ReadFile("/etc/fstab")
	if string(got) != "line1\nline2\n" {
		t.Errorf("append = %q", got)
	}
	d.WriteFile("/etc/hosts", []byte("h"), 0)
	d.WriteFile("/usr/bin/gcc", []byte("b"), 0o755)
	if got := d.List("/etc/"); len(got) != 2 || got[0] != "/etc/fstab" {
		t.Errorf("List = %v", got)
	}
	if mode, ok := d.Stat("/usr/bin/gcc"); !ok || mode != 0o755 {
		t.Errorf("Stat = %o, %v", mode, ok)
	}
}

func TestDiskBootable(t *testing.T) {
	d := NewDisk()
	if d.Bootable() {
		t.Error("blank disk bootable")
	}
	d.Format("/")
	if d.Bootable() {
		t.Error("kernel-less disk bootable")
	}
	d.WriteFile("/boot/vmlinuz", []byte("kernel"), 0o755)
	if !d.Bootable() {
		t.Error("installed disk not bootable")
	}
}

func TestNodeNeedsInstallLifecycle(t *testing.T) {
	n := testNode()
	if !n.NeedsInstall() {
		t.Error("factory-fresh node must need installation")
	}
	n.Disk().Format("/")
	n.Disk().WriteFile("/boot/vmlinuz", []byte("k"), 0o755)
	n.ClearReinstall()
	if n.NeedsInstall() {
		t.Error("installed node should boot from disk")
	}
	n.ForceReinstall()
	if !n.NeedsInstall() {
		t.Error("ForceReinstall ignored")
	}
}

func TestNodeExecRequiresUp(t *testing.T) {
	n := testNode()
	if _, err := n.Exec("hostname"); err == nil {
		t.Error("Exec on an off node must fail")
	}
	n.SetState(StateUp)
	n.SetName("compute-0-0")
	out, err := n.Exec("hostname")
	if err != nil || out != "compute-0-0\n" {
		t.Errorf("hostname = %q, %v", out, err)
	}
}

func TestNodeExecCommands(t *testing.T) {
	n := testNode()
	n.SetState(StateUp)
	n.SetName("compute-0-0")
	n.SetKernelVersion("2.4.9-31")
	n.PackageDB().Install(rpm.Metadata{Name: "glibc",
		Version: rpm.Version{Version: "2.2.4", Release: "24"}, Arch: "i386"})

	out, err := n.Exec("uname -r")
	if err != nil || !strings.Contains(out, "2.4.9-31") {
		t.Errorf("uname = %q, %v", out, err)
	}
	out, err = n.Exec("rpm -qa")
	if err != nil || !strings.Contains(out, "glibc-2.2.4-24.i386") {
		t.Errorf("rpm -qa = %q, %v", out, err)
	}
	out, err = n.Exec("rpm -q glibc")
	if err != nil || !strings.HasPrefix(out, "glibc-") {
		t.Errorf("rpm -q = %q, %v", out, err)
	}
	if _, err := n.Exec("rpm -q nothere"); err == nil {
		t.Error("rpm -q for missing package should fail")
	}
	if _, err := n.Exec("made-up-command"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, err := n.Exec(""); err == nil {
		t.Error("empty command should fail")
	}
}

func TestNodeProcessesAndKill(t *testing.T) {
	n := testNode()
	if _, err := n.StartProcess("bad-job"); err == nil {
		t.Error("process on down node should fail")
	}
	n.SetState(StateUp)
	n.SetName("compute-0-0")
	p1, _ := n.StartProcess("bad-job")
	p2, _ := n.StartProcess("bad-job")
	p3, _ := n.StartProcess("good-job")
	if p1 == p2 || p2 == p3 {
		t.Error("PIDs must be unique")
	}
	out, _ := n.Exec("ps")
	if strings.Count(out, "bad-job") != 2 || strings.Count(out, "good-job") != 1 {
		t.Errorf("ps = %q", out)
	}
	out, err := n.Exec("kill bad-job")
	if err != nil || out != "killed 2\n" {
		t.Errorf("kill = %q, %v", out, err)
	}
	if len(n.Processes()) != 1 {
		t.Errorf("processes after kill = %v", n.Processes())
	}
}

func TestNodeShootSelfTriggersRebootHook(t *testing.T) {
	n := testNode()
	n.SetState(StateUp)
	n.SetName("compute-0-0")
	rebooted := make(chan struct{})
	n.OnReboot = func() { close(rebooted) }
	n.StartProcess("job")

	out, err := n.Exec("/boot/kickstart/cluster-kickstart")
	if err != nil || !strings.Contains(out, "installation") {
		t.Fatalf("shoot = %q, %v", out, err)
	}
	select {
	case <-rebooted:
	case <-time.After(2 * time.Second):
		t.Fatal("reboot hook never fired")
	}
	if !n.NeedsInstall() {
		t.Error("shoot-self must force reinstallation")
	}
	if len(n.Processes()) != 0 {
		t.Error("processes survived the reboot")
	}
	if n.State() != StateBooting {
		t.Errorf("state = %s, want booting", n.State())
	}
}

func TestNodeServiceTracking(t *testing.T) {
	n := testNode()
	n.SetServices([]string{"sshd", "pbs-mom", "ypbind"})
	if !n.HasService("pbs-mom") || n.HasService("httpd") {
		t.Error("service lookup wrong")
	}
	got := n.Services()
	if len(got) != 3 || got[0] != "pbs-mom" {
		t.Errorf("Services = %v", got)
	}
}

func TestMyrinetOperationalInvariant(t *testing.T) {
	n := testNode()
	n.SetKernelVersion("2.4.9-31")
	if n.MyrinetOperational() {
		t.Error("driver never built but reported operational")
	}
	n.SetGMDriverFor("2.4.9-31")
	if !n.MyrinetOperational() {
		t.Error("matching driver reported non-operational")
	}
	// A kernel update without a driver rebuild must break Myrinet — the
	// exact version-skew problem §6.3's source-rebuild strategy solves.
	n.SetKernelVersion("2.4.9-34")
	if n.MyrinetOperational() {
		t.Error("stale driver loaded against a newer kernel")
	}
}

func TestNodeConcurrentAccess(t *testing.T) {
	n := testNode()
	n.SetState(StateUp)
	n.SetName("c0")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n.StartProcess("job")
				n.Exec("ps")
				n.Logf("iteration %d", j)
			}
		}()
	}
	wg.Wait()
	if len(n.Processes()) != 400 {
		t.Errorf("processes = %d, want 400", len(n.Processes()))
	}
}

func TestPowerOff(t *testing.T) {
	n := testNode()
	n.SetState(StateUp)
	n.StartProcess("job")
	n.PowerOff()
	if n.State() != StateOff || len(n.Processes()) != 0 {
		t.Error("PowerOff incomplete")
	}
}

func TestNodeExecDfLsService(t *testing.T) {
	n := testNode()
	n.SetState(StateUp)
	n.SetName("compute-0-0")
	n.Disk().Format("/")
	n.Disk().Format("/state/partition1")
	n.Disk().WriteFile("/etc/hosts", []byte("h"), 0o644)
	n.SetServices([]string{"sshd"})

	out, err := n.Exec("df")
	if err != nil || !strings.Contains(out, "/ 1 files") || !strings.Contains(out, "/state/partition1 0 files") {
		t.Errorf("df = %q, %v", out, err)
	}
	out, err = n.Exec("ls /etc/")
	if err != nil || out != "/etc/hosts\n" {
		t.Errorf("ls = %q, %v", out, err)
	}
	if _, err := n.Exec("ls"); err == nil {
		t.Error("ls without path accepted")
	}
	out, err = n.Exec("service sshd status")
	if err != nil || !strings.Contains(out, "running") {
		t.Errorf("service = %q, %v", out, err)
	}
	if _, err := n.Exec("service httpd status"); err == nil {
		t.Error("missing service reported running")
	}
	if _, err := n.Exec("service httpd"); err == nil {
		t.Error("malformed service command accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	n := testNode()
	n.SetIP("10.0.0.5")
	if n.IP() != "10.0.0.5" || n.MAC() == "" {
		t.Error("IP/MAC accessors")
	}
	n.SetEKVAddr("127.0.0.1:9999")
	if n.EKVAddr() != "127.0.0.1:9999" {
		t.Error("EKV accessor")
	}
	n.Logf("line %d", 1)
	if len(n.InstallLog()) != 1 {
		t.Error("InstallLog")
	}
	n.MarkInstalled()
	if n.Installs() != 1 {
		t.Error("Installs")
	}
	n.SetGMDriverFor("2.4.9")
	if n.GMDriverFor() != "2.4.9" {
		t.Error("GMDriverFor")
	}
	n.PackageDB().Install(rpm.Metadata{Name: "x", Version: rpm.Version{Version: "1", Release: "1"}})
	n.ResetPackageDB()
	if n.PackageDB().Len() != 0 {
		t.Error("ResetPackageDB")
	}
}

func TestDiskRemoveAllAndEnsure(t *testing.T) {
	d := NewDisk()
	d.Format("/")
	d.WriteFile("/a", []byte("x"), 0)
	d.RemoveAll()
	if len(d.Parts) != 0 {
		t.Error("RemoveAll left partitions")
	}
	p := d.EnsurePartition("/export")
	if p.Formatted {
		t.Error("EnsurePartition should not format")
	}
	if q := d.EnsurePartition("/export"); q != p {
		t.Error("EnsurePartition should be idempotent")
	}
}

// Package node models a cluster machine: a hardware profile, a disk with
// mountable partitions, an installed-package database, a process table,
// and the power/boot state machine that management tools drive. The paper
// treats a compute node's base OS as "soft state that can be changed and/or
// updated rapidly" (§1); this package makes that state explicit and
// reinstallable.
package node

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// File is one stored file on a partition.
type File struct {
	Data []byte
	Mode uint32
}

// Partition is a formatted region of the disk holding a file tree. Paths
// are absolute (relative to the running system's root, not the partition).
type Partition struct {
	Mount     string // mountpoint, e.g. "/" or "/state/partition1"
	Formatted bool
	// Generation counts how many times the partition has been formatted;
	// tests use it to prove non-root partitions survive reinstalls (§6.3).
	Generation int
	files      map[string]File
}

// Disk is a node's system disk: a set of partitions keyed by mountpoint.
// File operations route to the partition with the longest matching
// mountpoint prefix, like a VFS. Disk is safe for concurrent use.
type Disk struct {
	mu    sync.RWMutex
	Parts map[string]*Partition
}

// NewDisk returns an empty, unpartitioned disk.
func NewDisk() *Disk {
	return &Disk{Parts: make(map[string]*Partition)}
}

// EnsurePartition creates the partition if it does not exist yet and
// returns it. Existing partitions — and their contents — are left alone;
// this is the "--noformat" path that preserves /state/partition1 across
// reinstalls.
func (d *Disk) EnsurePartition(mount string) *Partition {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.Parts[mount]; ok {
		return p
	}
	p := &Partition{Mount: mount, files: make(map[string]File)}
	d.Parts[mount] = p
	return p
}

// Format (re)creates the partition's filesystem, destroying its contents.
func (d *Disk) Format(mount string) *Partition {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.Parts[mount]
	if !ok {
		p = &Partition{Mount: mount}
		d.Parts[mount] = p
	}
	p.files = make(map[string]File)
	p.Formatted = true
	p.Generation++
	return p
}

// RemoveAll wipes the whole disk (the frontend's "clearpart --all").
func (d *Disk) RemoveAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Parts = make(map[string]*Partition)
}

// partitionFor returns the partition whose mountpoint is the longest
// prefix of path. Callers hold d.mu.
func (d *Disk) partitionFor(path string) (*Partition, error) {
	best := ""
	var found *Partition
	for m, p := range d.Parts {
		if !p.Formatted {
			continue
		}
		prefix := m
		if prefix != "/" && !strings.HasSuffix(prefix, "/") {
			prefix += "/"
		}
		if (path == m || strings.HasPrefix(path, prefix)) && len(m) > len(best) {
			best = m
			found = p
		}
	}
	if found == nil {
		return nil, fmt.Errorf("node: no formatted partition holds %q", path)
	}
	return found, nil
}

// WriteFile stores a file on the partition owning the path.
func (d *Disk) WriteFile(path string, data []byte, mode uint32) error {
	if !strings.HasPrefix(path, "/") {
		return fmt.Errorf("node: path %q is not absolute", path)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.partitionFor(path)
	if err != nil {
		return err
	}
	if mode == 0 {
		mode = 0o644
	}
	p.files[path] = File{Data: append([]byte(nil), data...), Mode: mode}
	return nil
}

// AppendFile appends to an existing file, creating it if needed (the shape
// of most %post "echo >> /etc/..." edits).
func (d *Disk) AppendFile(path string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.partitionFor(path)
	if err != nil {
		return err
	}
	f := p.files[path]
	f.Data = append(f.Data, data...)
	if f.Mode == 0 {
		f.Mode = 0o644
	}
	p.files[path] = f
	return nil
}

// ReadFile retrieves a file's contents.
func (d *Disk) ReadFile(path string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, err := d.partitionFor(path)
	if err != nil {
		return nil, err
	}
	f, ok := p.files[path]
	if !ok {
		return nil, fmt.Errorf("node: %s: no such file", path)
	}
	return append([]byte(nil), f.Data...), nil
}

// Stat reports whether a file exists and its mode.
func (d *Disk) Stat(path string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, err := d.partitionFor(path)
	if err != nil {
		return 0, false
	}
	f, ok := p.files[path]
	return f.Mode, ok
}

// List returns the sorted paths under a prefix across all partitions.
func (d *Disk) List(prefix string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for _, p := range d.Parts {
		if !p.Formatted {
			continue
		}
		for path := range p.files {
			if strings.HasPrefix(path, prefix) {
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// FileCount returns the number of files on the partition at mount.
func (d *Disk) FileCount(mount string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p, ok := d.Parts[mount]; ok {
		return len(p.files)
	}
	return 0
}

// Partition returns the partition at mount, if present.
func (d *Disk) Partition(mount string) (*Partition, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.Parts[mount]
	return p, ok
}

// Bootable reports whether the disk holds an installed OS: a formatted
// root with a kernel. A factory-fresh or wiped node is not bootable and
// falls into installation on power-on.
func (d *Disk) Bootable() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.Parts["/"]
	if !ok || !p.Formatted {
		return false
	}
	_, hasKernel := p.files["/boot/vmlinuz"]
	return hasKernel
}

package node

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyDiskLastWriteWins: random sequences of writes/appends across
// two partitions; reading any path returns exactly the accumulated state,
// and reformatting the root never touches the state partition.
func TestPropertyDiskLastWriteWins(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDisk()
		d.Format("/")
		d.Format("/state/partition1")
		want := map[string][]byte{}
		paths := []string{
			"/etc/a", "/etc/b", "/usr/bin/x",
			"/state/partition1/r1", "/state/partition1/r2",
		}
		for op := 0; op < 50; op++ {
			p := paths[r.Intn(len(paths))]
			data := []byte(fmt.Sprintf("op%d", op))
			if r.Intn(3) == 0 {
				if d.AppendFile(p, data) != nil {
					return false
				}
				want[p] = append(want[p], data...)
			} else {
				if d.WriteFile(p, data, 0o644) != nil {
					return false
				}
				want[p] = append([]byte(nil), data...)
			}
		}
		for p, w := range want {
			got, err := d.ReadFile(p)
			if err != nil || string(got) != string(w) {
				return false
			}
		}
		// Reformat root: state partition contents must be intact, root gone.
		d.Format("/")
		for p, w := range want {
			got, err := d.ReadFile(p)
			if len(p) > 7 && p[:7] == "/state/" {
				if err != nil || string(got) != string(w) {
					return false
				}
			} else if err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

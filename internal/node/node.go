package node

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rocks/internal/hardware"
	"rocks/internal/rpm"
)

// State is a node's externally visible condition.
type State string

// Node states. The paper's administrator view: a node is either serving
// jobs (Up), dark during power-on/boot (Booting), visible through eKV
// (Installing), or Off.
const (
	StateOff        State = "off"
	StateBooting    State = "booting"
	StateInstalling State = "installing"
	StateUp         State = "up"
	StateCrashed    State = "crashed" // hardware error: needs the crash cart
)

// Process is one entry in the node's process table.
type Process struct {
	PID  int
	Name string
}

// Node is one simulated machine.
type Node struct {
	HW hardware.Profile

	mu            sync.Mutex
	name          string
	ip            string
	state         State
	disk          *Disk
	db            *rpm.Database
	forceInstall  bool
	kernelVersion string
	gmDriverFor   string // kernel version the Myrinet driver was built against
	services      []string
	processes     map[int]*Process
	nextPID       int
	installLog    []string
	installs      int // how many times this node has been (re)installed
	ekvAddr       string

	// OnReboot, when set, is invoked (in a new goroutine) when a command
	// executed on the node requests a reboot — shoot-node's
	// /boot/kickstart/cluster-kickstart path. The cluster orchestrator
	// installs this hook to run the boot cycle.
	OnReboot func()
}

// New creates a powered-off node with a blank disk.
func New(hw hardware.Profile) *Node {
	return &Node{
		HW:        hw,
		state:     StateOff,
		disk:      NewDisk(),
		db:        rpm.NewDatabase(),
		processes: make(map[int]*Process),
		nextPID:   100,
	}
}

// Disk returns the node's disk.
func (n *Node) Disk() *Disk { return n.disk }

// PackageDB returns the installed-package database.
func (n *Node) PackageDB() *rpm.Database {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.db
}

// ResetPackageDB clears the package database (start of a reinstall).
func (n *Node) ResetPackageDB() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.db = rpm.NewDatabase()
}

// State returns the node's current state.
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// SetState transitions the node.
func (n *Node) SetState(s State) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.state = s
}

// Name returns the hostname assigned by DHCP/insert-ethers ("" before
// discovery).
func (n *Node) Name() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.name
}

// SetName records the hostname.
func (n *Node) SetName(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.name = name
}

// IP returns the node's private address.
func (n *Node) IP() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ip
}

// SetIP records the DHCP-assigned address.
func (n *Node) SetIP(ip string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ip = ip
}

// MAC returns the management Ethernet address.
func (n *Node) MAC() string { return n.HW.EthernetMAC() }

// ForceReinstall marks the node to reinstall on its next boot. Both
// shoot-node and a hard power cycle set this (§4: "A hard power cycle on a
// Rocks compute node forces the node to reinstall itself").
func (n *Node) ForceReinstall() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.forceInstall = true
}

// NeedsInstall reports whether the next boot must run the installer:
// either a reinstall was forced or the disk holds no bootable OS.
func (n *Node) NeedsInstall() bool {
	n.mu.Lock()
	force := n.forceInstall
	n.mu.Unlock()
	return force || !n.disk.Bootable()
}

// ClearReinstall resets the force flag (the installer calls this once it
// has committed to running).
func (n *Node) ClearReinstall() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.forceInstall = false
}

// KernelVersion returns the running kernel's version string.
func (n *Node) KernelVersion() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.kernelVersion
}

// SetKernelVersion records the installed kernel.
func (n *Node) SetKernelVersion(v string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.kernelVersion = v
}

// GMDriverFor returns the kernel version the Myrinet driver was compiled
// against ("" if never built). The Linux kernel "will only load modules
// that were compiled for that particular kernel version" (§6.3); tests
// assert this invariant after kernel updates.
func (n *Node) GMDriverFor() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gmDriverFor
}

// SetGMDriverFor records a completed Myrinet driver build.
func (n *Node) SetGMDriverFor(kernel string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.gmDriverFor = kernel
}

// MyrinetOperational reports whether the node's Myrinet interface can come
// up: the driver must exist and match the running kernel exactly.
func (n *Node) MyrinetOperational() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.HW.HasMyrinet() && n.gmDriverFor != "" && n.gmDriverFor == n.kernelVersion
}

// SetServices records the services the installed profile enables.
func (n *Node) SetServices(svcs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.services = append([]string(nil), svcs...)
}

// Services returns the enabled service names, sorted.
func (n *Node) Services() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := append([]string(nil), n.services...)
	sort.Strings(out)
	return out
}

// HasService reports whether a service is enabled.
func (n *Node) HasService(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.services {
		if s == name {
			return true
		}
	}
	return false
}

// Logf appends a line to the node's install log (also mirrored into
// /root/install.log on disk by the installer).
func (n *Node) Logf(format string, args ...interface{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.installLog = append(n.installLog, fmt.Sprintf(format, args...))
}

// InstallLog returns the accumulated log lines.
func (n *Node) InstallLog() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.installLog...)
}

// MarkInstalled bumps the install counter.
func (n *Node) MarkInstalled() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.installs++
}

// Installs reports how many times the node has been installed.
func (n *Node) Installs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.installs
}

// SetEKVAddr records the node's current eKV endpoint ("" when not
// installing).
func (n *Node) SetEKVAddr(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ekvAddr = addr
}

// EKVAddr returns the eKV endpoint to attach to during installation.
func (n *Node) EKVAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ekvAddr
}

// StartProcess launches a named process (a job, or a runaway) and returns
// its PID. Only an Up node runs processes.
func (n *Node) StartProcess(name string) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state != StateUp {
		return 0, fmt.Errorf("node %s: cannot start process: state is %s", n.name, n.state)
	}
	n.nextPID++
	p := &Process{PID: n.nextPID, Name: name}
	n.processes[p.PID] = p
	return p.PID, nil
}

// Processes lists running processes sorted by PID.
func (n *Node) Processes() []Process {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Process, 0, len(n.processes))
	for _, p := range n.processes {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// killAll removes processes by name, returning how many died.
func (n *Node) killAll(name string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	killed := 0
	for pid, p := range n.processes {
		if p.Name == name {
			delete(n.processes, pid)
			killed++
		}
	}
	return killed
}

// clearProcesses empties the process table (reboot/reinstall).
func (n *Node) clearProcesses() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.processes = make(map[int]*Process)
}

// PowerOff halts the node immediately.
func (n *Node) PowerOff() {
	n.clearProcesses()
	n.SetState(StateOff)
}

// ErrNodeDown is returned when a command is sent to a node that is not up
// — the "was node X offline?" failure mode of §3.2.
var ErrNodeDown = fmt.Errorf("node is not up")

// Exec runs a command on the node the way rexec/ssh would, returning its
// output. The supported command set is what the Rocks tools invoke.
func (n *Node) Exec(cmd string) (string, error) {
	if n.State() != StateUp {
		return "", fmt.Errorf("%s: %w (state %s)", n.Name(), ErrNodeDown, n.State())
	}
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", fmt.Errorf("empty command")
	}
	switch fields[0] {
	case "hostname":
		return n.Name() + "\n", nil
	case "uname":
		return "Linux " + n.Name() + " " + n.KernelVersion() + "\n", nil
	case "rpm":
		if len(fields) >= 2 && fields[1] == "-qa" {
			return n.PackageDB().Manifest(), nil
		}
		if len(fields) >= 3 && fields[1] == "-q" {
			if m, ok := n.PackageDB().Query(fields[2]); ok {
				return m.NVRA() + "\n", nil
			}
			return "", fmt.Errorf("package %s is not installed", fields[2])
		}
		return "", fmt.Errorf("rpm: unsupported arguments %v", fields[1:])
	case "ps":
		var b strings.Builder
		for _, p := range n.Processes() {
			fmt.Fprintf(&b, "%d %s\n", p.PID, p.Name)
		}
		return b.String(), nil
	case "spawn":
		// spawn <name>: start a named process (the stand-in for launching
		// an application binary).
		if len(fields) < 2 {
			return "", fmt.Errorf("spawn: missing process name")
		}
		pid, err := n.StartProcess(fields[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d\n", pid), nil
	case "kill", "killall":
		if len(fields) < 2 {
			return "", fmt.Errorf("kill: missing process name")
		}
		killed := n.killAll(fields[1])
		return fmt.Sprintf("killed %d\n", killed), nil
	case "df":
		// One line per formatted partition, like df's mount listing.
		var b strings.Builder
		d := n.Disk()
		d.mu.RLock()
		mounts := make([]string, 0, len(d.Parts))
		for m, part := range d.Parts {
			if part.Formatted {
				mounts = append(mounts, m)
			}
		}
		d.mu.RUnlock()
		sort.Strings(mounts)
		for _, m := range mounts {
			fmt.Fprintf(&b, "%s %d files (generation %d)\n", m, n.Disk().FileCount(m), generationOf(n.Disk(), m))
		}
		return b.String(), nil
	case "ls":
		if len(fields) < 2 {
			return "", fmt.Errorf("ls: missing path")
		}
		var b strings.Builder
		for _, p := range n.Disk().List(fields[1]) {
			b.WriteString(p)
			b.WriteByte('\n')
		}
		return b.String(), nil
	case "service":
		if len(fields) < 3 || fields[2] != "status" {
			return "", fmt.Errorf("service: usage: service <name> status")
		}
		if n.HasService(fields[1]) {
			return fields[1] + " is running\n", nil
		}
		return "", fmt.Errorf("service %s is not configured", fields[1])
	case "cat":
		if len(fields) < 2 {
			return "", fmt.Errorf("cat: missing path")
		}
		data, err := n.Disk().ReadFile(fields[1])
		if err != nil {
			return "", err
		}
		return string(data), nil
	case "/boot/kickstart/cluster-kickstart", "shoot-self":
		// The shoot-node payload: mark for reinstallation and reboot.
		n.ForceReinstall()
		n.requestReboot()
		return "rebooting into installation\n", nil
	case "reboot":
		n.requestReboot()
		return "rebooting\n", nil
	default:
		return "", fmt.Errorf("%s: command not found", fields[0])
	}
}

func (n *Node) requestReboot() {
	n.clearProcesses()
	n.mu.Lock()
	hook := n.OnReboot
	n.mu.Unlock()
	n.SetState(StateBooting)
	if hook != nil {
		go hook()
	}
}

// generationOf reads a partition's format generation.
func generationOf(d *Disk, mount string) int {
	if p, ok := d.Partition(mount); ok {
		return p.Generation
	}
	return 0
}

package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkInstallCurve measures the completion-curve experiment itself at
// the three headline fleet sizes in both modes. The reported custom
// metrics are the experiment's figures (virtual seconds), so one -bench
// run yields the whole BENCH table; ns/op is the simulator's own cost of
// modeling that fleet.
func BenchmarkInstallCurve(b *testing.B) {
	for _, n := range []int{32, 1000, 10000} {
		for _, relay := range []bool{false, true} {
			mode := "frontend"
			if relay {
				mode = "relay"
			}
			b.Run(fmt.Sprintf("%s-%d", mode, n), func(b *testing.B) {
				var c CompletionCurve
				for i := 0; i < b.N; i++ {
					c = RunInstallCurve(DefaultFleetParams(n, relay))
				}
				b.ReportMetric(c.TimeTo90, "vsec_to_90%")
				b.ReportMetric(c.TimeToLast, "vsec_to_last")
				b.ReportMetric(c.PeerBytes/1048576, "peer_MB")
				b.ReportMetric(c.FrontendBytes/1048576, "frontend_MB")
			})
		}
	}
}

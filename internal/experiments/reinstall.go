// Package experiments reproduces the paper's quantitative results in
// modeled (virtual) time. The live plane (internal/core) proves the
// mechanisms work; this package replays the same artifacts — the real
// kickstart profile and the real synthetic distribution's package sizes —
// through the internal/simnet fluid-flow network model to predict wall
// clock at testbed scale (Table I, the §6.3 serial-download
// micro-benchmark, and the Gigabit/replicated-server/Myrinet ablations).
//
// Calibration follows the paper's own accounting for a solo reinstall of
// 10.3 minutes (618 s): ~223 s is "downloading and installing RPMs" and
// "the remainder of the time is spent in rebooting and post configuration",
// with the Myrinet driver source rebuild contributing a 20-30% penalty. The
// server side uses the measured single-stream throughput (7-8 MB/s from a
// 100 Mbit NIC, §6.3) and a higher aggregate utilization for many
// concurrent streams.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"rocks/internal/dist"
	"rocks/internal/kickstart"
	"rocks/internal/simnet"
)

// PackageWork is one package's contribution to a reinstall: bytes over the
// wire, then CPU seconds to unpack and configure.
type PackageWork struct {
	Name    string
	Bytes   float64
	CPUSecs float64
}

// ReinstallParams parameterizes one concurrent-reinstallation experiment.
type ReinstallParams struct {
	Nodes int
	// Servers is the number of replicated HTTP servers behind load
	// balancing (§6.3); nodes are assigned round-robin.
	Servers int
	// ServerMBps is one server's effective aggregate throughput in MB/s.
	// The paper's dual-PIII on 100 Mbit: ~92% utilization ≈ 11.5 MB/s.
	ServerMBps float64
	// ClientMBps caps a single node's stream: the measured 7-8 MB/s
	// single-stream ceiling (~60% of Fast Ethernet).
	ClientMBps float64
	// PreSecs is power-on → first byte (POST, boot, DHCP, kickstart
	// fetch, partitioning).
	PreSecs float64
	// PostSecs is post-configuration plus the final reboot, excluding the
	// Myrinet driver build.
	PostSecs float64
	// GMBuildSecs is the Myrinet source rebuild (§6.3's 20-30% penalty).
	GMBuildSecs float64
	// WithMyrinet includes the GM build (Table I nodes all have Myrinet).
	WithMyrinet bool
	// Packages is the per-package workload; nil means the real compute
	// profile resolved against the synthetic distribution.
	Packages []PackageWork
	// Bursty switches the per-node demand model: instead of the smoothed
	// "1 MB/s average" pipeline anaconda presents (the paper's model), each
	// package downloads at full stream speed and then stalls for its CPU
	// time. Identical nodes then burst in lockstep and contend even at
	// small N — the ablation showing why the demand model matters.
	Bursty bool
}

// DefaultParams returns the Table I configuration for n nodes.
func DefaultParams(n int) ReinstallParams {
	return ReinstallParams{
		Nodes:       n,
		Servers:     1,
		ServerMBps:  11.5,
		ClientMBps:  7.5,
		PreSecs:     60,
		PostSecs:    195,
		GMBuildSecs: 140,
		WithMyrinet: true,
		Packages:    ComputePackageWork(),
	}
}

var (
	pkgOnce sync.Once
	pkgWork []PackageWork
)

// ComputePackageWork resolves the compute appliance's kickstart profile
// against the synthetic Red Hat distribution and converts it to per-package
// work: the same 162 packages and ~225 MB the live installer moves, with
// CPU time split proportionally to size so that the solo
// download-and-install phase matches the paper's 223 s at 7.5 MB/s.
func ComputePackageWork() []PackageWork {
	pkgOnce.Do(func() {
		fw := kickstart.DefaultFramework()
		d := dist.Build("bench", fw, dist.Source{Name: "redhat", Repo: dist.SyntheticRedHat()})
		profile, err := fw.Generate(kickstart.Request{
			Appliance: "compute", Arch: "i386", NodeName: "bench",
			Attrs: kickstart.DefaultAttrs("http://frontend/dist", "frontend"),
		})
		if err != nil {
			panic("experiments: " + err.Error())
		}
		pkgs, err := d.ResolveProfile(profile)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		var totalBytes float64
		for _, p := range pkgs {
			totalBytes += float64(p.Size)
		}
		// Solo D&I = 223 s; wire time at the single-stream ceiling is
		// bytes/7.5 MB/s; the rest is CPU, apportioned by size.
		const soloDI = 223.0
		wire := totalBytes / (7.5 * 1e6 * mbFactor)
		cpuTotal := soloDI - wire
		if cpuTotal < 0 {
			cpuTotal = 0
		}
		work := make([]PackageWork, len(pkgs))
		for i, p := range pkgs {
			work[i] = PackageWork{
				Name:    p.Name,
				Bytes:   float64(p.Size),
				CPUSecs: cpuTotal * float64(p.Size) / totalBytes,
			}
		}
		pkgWork = work
	})
	return pkgWork
}

// mbFactor converts the paper's MB (2^20 bytes, matching "225 MB") against
// MB/s link rates quoted in decimal; we treat both as 2^20 for internal
// consistency, so 7.5 MB/s means 7.5*2^20 B/s.
const mbFactor = 1048576.0 / 1e6

// mbps converts an "MB/s" figure to bytes/second.
func mbps(v float64) float64 { return v * 1048576 }

// fastEthernetBps is a 100 Mbit NIC's raw capacity in bytes/second.
const fastEthernetBps = 12.5e6

// ReinstallResult is the outcome of one experiment.
type ReinstallResult struct {
	Params      ReinstallParams
	PerNodeSecs []float64
	TotalSecs   float64 // when the last node finished
	// BytesMoved is the total wire traffic.
	BytesMoved float64
}

// TotalMinutes reports the Table I figure.
func (r ReinstallResult) TotalMinutes() float64 { return r.TotalSecs / 60 }

// RunReinstall simulates p.Nodes concurrent reinstallations and returns
// per-node and total completion times.
func RunReinstall(p ReinstallParams) ReinstallResult {
	if p.Nodes <= 0 {
		panic("experiments: need at least one node")
	}
	if p.Servers <= 0 {
		p.Servers = 1
	}
	if p.Packages == nil {
		p.Packages = ComputePackageWork()
	}
	sim := simnet.New()
	servers := make([]*simnet.Link, p.Servers)
	for i := range servers {
		servers[i] = sim.NewLink(fmt.Sprintf("server-%d", i), mbps(p.ServerMBps))
	}
	res := ReinstallResult{Params: p, PerNodeSecs: make([]float64, p.Nodes)}

	for n := 0; n < p.Nodes; n++ {
		n := n
		client := sim.NewLink(fmt.Sprintf("client-%d", n), fastEthernetBps) // raw 100 Mbit NIC; the stream cap applies separately
		server := servers[n%p.Servers]
		path := []*simnet.Link{server, client}

		var installPkg func(i int)
		finish := func() {
			post := p.PostSecs
			if p.WithMyrinet {
				post += p.GMBuildSecs
			}
			sim.After(post, func() {
				res.PerNodeSecs[n] = sim.Now()
			})
		}
		installPkg = func(i int) {
			if i >= len(p.Packages) {
				finish()
				return
			}
			w := p.Packages[i]
			res.BytesMoved += w.Bytes
			if p.Bursty {
				// Ablation: download at wire speed, then stall for CPU.
				sim.StartFlow(fmt.Sprintf("n%d-%s", n, w.Name), w.Bytes, path, mbps(p.ClientMBps), func() {
					sim.After(w.CPUSecs, func() { installPkg(i + 1) })
				})
				return
			}
			// Anaconda overlaps the next package's download with the
			// current package's unpack, so a node presents a smooth demand
			// to the server rather than wire-speed bursts — this is exactly
			// the paper's "each reinstalling node demands 1 MB/sec" model.
			// Fold the package's CPU time into an effective rate cap: the
			// flow completes when download AND install are both done.
			wireSecs := w.Bytes / mbps(p.ClientMBps)
			effRate := w.Bytes / (wireSecs + w.CPUSecs)
			sim.StartFlow(fmt.Sprintf("n%d-%s", n, w.Name), w.Bytes, path, effRate, func() {
				installPkg(i + 1)
			})
		}
		sim.After(p.PreSecs, func() { installPkg(0) })
	}
	sim.Run()
	for _, t := range res.PerNodeSecs {
		if t > res.TotalSecs {
			res.TotalSecs = t
		}
	}
	return res
}

// TableIRow pairs a measured point from the paper with our prediction.
type TableIRow struct {
	Nodes         int
	PaperMinutes  float64
	ModelMinutes  float64
	PerNodeSpread float64 // max-min across nodes, seconds
}

// PaperTableI is Table I as published.
var PaperTableI = map[int]float64{1: 10.3, 2: 9.8, 4: 10.1, 8: 10.4, 16: 11.1, 32: 13.7}

// RunTableI reproduces the full table.
func RunTableI() []TableIRow {
	var rows []TableIRow
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		r := RunReinstall(DefaultParams(n))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range r.PerNodeSecs {
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
		rows = append(rows, TableIRow{
			Nodes:         n,
			PaperMinutes:  PaperTableI[n],
			ModelMinutes:  r.TotalMinutes(),
			PerNodeSpread: hi - lo,
		})
	}
	return rows
}

// FormatTableI renders the comparison table.
func FormatTableI(rows []TableIRow) string {
	s := fmt.Sprintf("%-6s %-22s %-22s\n", "Nodes", "Paper (minutes)", "Model (minutes)")
	for _, r := range rows {
		s += fmt.Sprintf("%-6d %-22.1f %-22.1f\n", r.Nodes, r.PaperMinutes, r.ModelMinutes)
	}
	return s
}

// SerialDownloadMBps reproduces the §6.3 micro-benchmark: serially
// downloading every RPM a compute node fetches, reporting the achieved
// MB/s (paper: "the web server sourced 7-8 MB/s").
func SerialDownloadMBps(p ReinstallParams) float64 {
	if p.Packages == nil {
		p.Packages = ComputePackageWork()
	}
	sim := simnet.New()
	server := sim.NewLink("server", mbps(p.ServerMBps))
	client := sim.NewLink("client", fastEthernetBps)
	var total float64
	var next func(i int)
	done := 0.0
	next = func(i int) {
		if i >= len(p.Packages) {
			done = sim.Now()
			return
		}
		w := p.Packages[i]
		total += w.Bytes
		sim.StartFlow(w.Name, w.Bytes, []*simnet.Link{server, client}, mbps(p.ClientMBps), func() {
			next(i + 1)
		})
	}
	next(0)
	sim.Run()
	if done == 0 {
		return 0
	}
	return total / done / 1048576
}

// MaxFullSpeedReinstalls reports how many concurrent reinstallations a
// configuration supports "at full speed": the largest N whose total time
// stays within tol of the solo time (the paper's model predicts 7 for Fast
// Ethernet and 7.0-9.5× that for Gigabit).
func MaxFullSpeedReinstalls(base ReinstallParams, tol float64, maxN int) int {
	solo := base
	solo.Nodes = 1
	ref := RunReinstall(solo).TotalSecs
	best := 1
	for n := 2; n <= maxN; n++ {
		p := base
		p.Nodes = n
		if RunReinstall(p).TotalSecs <= ref*(1+tol) {
			best = n
		} else {
			break
		}
	}
	return best
}

// SequentialIntegration models first-time cluster integration (§6.4):
// insert-ethers assigns rack/rank in discovery order, so nodes are booted
// one at a time — each must finish installing before the next powers on.
// The contrast with RunReinstall is the paper's §5 punchline: integrating N
// nodes costs N solo installs, but REinstalling the whole cluster later
// costs barely more than one, because reinstallation is concurrent.
func SequentialIntegration(p ReinstallParams) ReinstallResult {
	res := ReinstallResult{Params: p, PerNodeSecs: make([]float64, p.Nodes)}
	solo := p
	solo.Nodes = 1
	one := RunReinstall(solo)
	for i := 0; i < p.Nodes; i++ {
		res.PerNodeSecs[i] = float64(i+1) * one.TotalSecs
		res.BytesMoved += one.BytesMoved
	}
	res.TotalSecs = res.PerNodeSecs[p.Nodes-1]
	return res
}

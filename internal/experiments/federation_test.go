package experiments

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestFederationCurveMergesShards(t *testing.T) {
	c := RunFederationCurve(FederationParams{Nodes: 64, Shards: 4})
	if len(c.PerShard) != 4 {
		t.Fatalf("PerShard = %d, want 4", len(c.PerShard))
	}
	total := 0
	for i, s := range c.PerShard {
		if len(s.Times) != 16 {
			t.Errorf("shard %d has %d nodes, want 16", i, len(s.Times))
		}
		total += len(s.Times)
	}
	if total != 64 || len(c.Times) != 64 {
		t.Fatalf("merged %d/%d times, want 64", total, len(c.Times))
	}
	if !sort.Float64sAreSorted(c.Times) {
		t.Error("merged times not sorted")
	}
	if c.MirrorSecs != 0 {
		t.Errorf("delta mirror cost = %v, want 0", c.MirrorSecs)
	}
	last := 0.0
	for _, s := range c.PerShard {
		if s.TimeToLast > last {
			last = s.TimeToLast
		}
	}
	if c.TimeToLast != last {
		t.Errorf("TimeToLast = %v, want slowest shard %v", c.TimeToLast, last)
	}
	// Equal shards of an identical workload finish identically: determinism
	// across shards is what makes the curve reproducible.
	for i := 1; i < 4; i++ {
		if c.PerShard[i].TimeToLast != c.PerShard[0].TimeToLast {
			t.Errorf("shard %d diverged: %v vs %v", i,
				c.PerShard[i].TimeToLast, c.PerShard[0].TimeToLast)
		}
	}
}

func TestFederationShardRemainder(t *testing.T) {
	c := RunFederationCurve(FederationParams{Nodes: 10, Shards: 4})
	var sizes []int
	total := 0
	for _, s := range c.PerShard {
		sizes = append(sizes, len(s.Times))
		total += len(s.Times)
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("shard sizes = %v, want %v", sizes, want)
		}
	}
	if total != 10 || len(c.Times) != 10 {
		t.Fatalf("lost nodes in the merge: %d/%d", total, len(c.Times))
	}
}

// The full mirror delays every completion by exactly the cascade time; a
// delta re-mirror of the unchanged tree delays nothing. That difference is
// the entire cost of keeping the hierarchy warm.
func TestFederationDeltaVsFullMirror(t *testing.T) {
	base := DefaultFleetParams(256, false)
	delta := RunFederationCurve(FederationParams{Nodes: 256, Shards: 8})
	full := RunFederationCurve(FederationParams{
		Nodes: 256, Shards: 8, MirrorBytes: base.TotalBytes})
	wantMirror := base.TotalBytes * 8 / base.FrontendBps
	if math.Abs(full.MirrorSecs-wantMirror) > 1e-9 {
		t.Fatalf("MirrorSecs = %v, want %v", full.MirrorSecs, wantMirror)
	}
	if math.Abs((full.TimeToLast-delta.TimeToLast)-full.MirrorSecs) > 1e-6 {
		t.Errorf("full-delta gap = %v, want mirror cost %v",
			full.TimeToLast-delta.TimeToLast, full.MirrorSecs)
	}
	if math.Abs((full.TimeTo90-delta.TimeTo90)-full.MirrorSecs) > 1e-6 {
		t.Errorf("90th percentile gap = %v, want %v",
			full.TimeTo90-delta.TimeTo90, full.MirrorSecs)
	}
	// The cascade's bytes cross the top frontend's NIC once per child.
	if got := full.FrontendBytes - delta.FrontendBytes; math.Abs(got-base.TotalBytes*8) > 1 {
		t.Errorf("mirror moved %v bytes, want %v", got, base.TotalBytes*8)
	}
}

// Frontend-only installs are NIC-bound, so splitting the fleet across 8
// child frontends buys close to 8 NICs' worth of parallelism once the
// hierarchy is warm.
func TestFederationSpeedupFrontendOnly(t *testing.T) {
	cmp := RunFederationComparison(1024, 8, false)
	if got := cmp.Speedup(); got < 4 {
		t.Errorf("federated speedup = %.1fx, want >= 4x at 8 shards", got)
	}
	if cmp.DeltaMirror.TimeToLast >= cmp.Single.TimeToLast {
		t.Errorf("federation never helped: %v >= %v",
			cmp.DeltaMirror.TimeToLast, cmp.Single.TimeToLast)
	}
	// Even the cold full mirror must not be slower than serving every node
	// from one NIC: the cascade moves the tree 8 times, the single frontend
	// moves it 1024 times.
	if cmp.FullMirror.TimeToLast >= cmp.Single.TimeToLast {
		t.Errorf("cold hierarchy slower than single frontend: %v >= %v",
			cmp.FullMirror.TimeToLast, cmp.Single.TimeToLast)
	}
}

// With relays inside each shard, the shard curves need fewer doubling
// waves than the monolithic fleet, so the warm hierarchy still finishes no
// later than the single relay-assisted frontend.
func TestFederationRelayNoWorse(t *testing.T) {
	cmp := RunFederationComparison(1024, 8, true)
	if cmp.DeltaMirror.TimeToLast > cmp.Single.TimeToLast {
		t.Errorf("federated relay fleet slower: %v > %v",
			cmp.DeltaMirror.TimeToLast, cmp.Single.TimeToLast)
	}
	if cmp.DeltaMirror.PeerBytes == 0 {
		t.Error("relay shards moved no peer bytes")
	}
}

func TestFormatFederationCurves(t *testing.T) {
	out := FormatFederationCurves([]FederationComparison{
		RunFederationComparison(64, 4, false),
	})
	for _, want := range []string{"Nodes", "Shards", "Speedup", "64", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("want header + 1 row:\n%s", out)
	}
}

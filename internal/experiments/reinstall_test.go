package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestComputePackageWorkMatchesPaperWorkload(t *testing.T) {
	work := ComputePackageWork()
	if len(work) != 162 {
		t.Errorf("packages = %d, want 162", len(work))
	}
	var bytes, cpu float64
	for _, w := range work {
		bytes += w.Bytes
		cpu += w.CPUSecs
	}
	if math.Abs(bytes-225*1048576)/(225*1048576) > 0.01 {
		t.Errorf("total bytes = %.0f, want ~225 MB", bytes)
	}
	// CPU plus solo wire time must equal the paper's 223 s D&I phase.
	wire := bytes / mbps(7.5)
	if math.Abs(cpu+wire-223) > 1 {
		t.Errorf("solo D&I = %.1f s, want 223", cpu+wire)
	}
}

func TestSoloReinstallMatchesPaper(t *testing.T) {
	r := RunReinstall(DefaultParams(1))
	if math.Abs(r.TotalMinutes()-10.3) > 0.2 {
		t.Errorf("solo reinstall = %.2f min, want 10.3 ± 0.2", r.TotalMinutes())
	}
}

// TestTableIShape asserts the paper's qualitative result: reinstall time is
// flat through 8 concurrent nodes, rises modestly at 16, and more at 32.
func TestTableIShape(t *testing.T) {
	rows := RunTableI()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byNodes := map[int]float64{}
	for _, r := range rows {
		byNodes[r.Nodes] = r.ModelMinutes
	}
	solo := byNodes[1]
	for _, n := range []int{2, 4, 8} {
		if math.Abs(byNodes[n]-solo) > 0.2 {
			t.Errorf("%d nodes = %.2f min; want flat at ~%.2f (no contention through 8)", n, byNodes[n], solo)
		}
	}
	if byNodes[16] <= solo+0.5 {
		t.Errorf("16 nodes = %.2f min; the server should be saturated past ~11 nodes", byNodes[16])
	}
	if byNodes[32] <= byNodes[16]+1 {
		t.Errorf("32 nodes = %.2f min; contention should grow markedly (16: %.2f)", byNodes[32], byNodes[16])
	}
	// 16-node point should be close to the paper's 11.1.
	if math.Abs(byNodes[16]-11.1) > 1.5 {
		t.Errorf("16 nodes = %.2f min, paper measured 11.1", byNodes[16])
	}
	// All nodes in a symmetric run finish together.
	for _, r := range rows {
		if r.PerNodeSpread > 1 {
			t.Errorf("%d nodes: per-node spread %.1f s; symmetric runs should finish together", r.Nodes, r.PerNodeSpread)
		}
	}
}

func TestSerialDownloadMicrobenchmark(t *testing.T) {
	// §6.3: "we found the web server sourced 7-8 MB/s."
	got := SerialDownloadMBps(DefaultParams(1))
	if got < 7.0 || got > 8.0 {
		t.Errorf("serial download = %.2f MB/s, want 7-8", got)
	}
}

// TestFullSpeedConcurrency reproduces the paper's capacity model: with the
// web server providing ~7 MB/s and each node demanding ~1 MB/s, "the web
// server described above should be able to support 7 concurrent
// reinstallations at full speed."
func TestFullSpeedConcurrency(t *testing.T) {
	p := DefaultParams(1)
	p.ServerMBps = 7.0
	got := MaxFullSpeedReinstalls(p, 0.02, 16)
	if got < 6 || got > 8 {
		t.Errorf("full-speed concurrency = %d, want ~7", got)
	}
}

// TestGigabitScaling reproduces the §6.3 footnote: "Gigabit Ethernet will
// support 7.0-9.5 times the number of concurrent full-speed reinstallations
// over Fast Ethernet."
func TestGigabitScaling(t *testing.T) {
	fe := DefaultParams(1)
	fe.ServerMBps = 7.0
	feN := MaxFullSpeedReinstalls(fe, 0.02, 20)

	ge := fe
	ge.ServerMBps = 7.0 * 8.5 // GigE ≈ 8.5× Fast Ethernet effective throughput
	geN := MaxFullSpeedReinstalls(ge, 0.02, 100)

	ratio := float64(geN) / float64(feN)
	if ratio < 7.0 || ratio > 9.5 {
		t.Errorf("GigE/FE concurrency ratio = %.1f (FE=%d, GE=%d), want 7.0-9.5", ratio, feN, geN)
	}
}

// TestReplicatedServers reproduces §6.3: "By deploying N web servers, one
// can support N times the number of concurrent full-speed reinstallations."
func TestReplicatedServers(t *testing.T) {
	base := DefaultParams(32)
	one := RunReinstall(base)

	quad := base
	quad.Servers = 4
	four := RunReinstall(quad)

	solo := RunReinstall(DefaultParams(1)).TotalSecs
	if four.TotalSecs > solo*1.02 {
		t.Errorf("32 nodes on 4 servers = %.0f s; should be full speed (solo %.0f s)", four.TotalSecs, solo)
	}
	if one.TotalSecs <= four.TotalSecs*1.2 {
		t.Errorf("replication should help markedly: 1 server %.0f s vs 4 servers %.0f s", one.TotalSecs, four.TotalSecs)
	}
}

// TestMyrinetRebuildPenalty reproduces §6.3: the source rebuild "adds only
// a 20-30% time penalty on reinstallation".
func TestMyrinetRebuildPenalty(t *testing.T) {
	with := RunReinstall(DefaultParams(1)).TotalSecs
	p := DefaultParams(1)
	p.WithMyrinet = false
	without := RunReinstall(p).TotalSecs
	penalty := (with - without) / without
	if penalty < 0.20 || penalty > 0.30 {
		t.Errorf("Myrinet rebuild penalty = %.0f%%, want 20-30%%", penalty*100)
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	r := RunReinstall(DefaultParams(4))
	perNode := 225.0 * 1048576
	if math.Abs(r.BytesMoved-4*perNode)/(4*perNode) > 0.02 {
		t.Errorf("BytesMoved = %.0f, want ~4×225 MB", r.BytesMoved)
	}
}

func TestFormatTableI(t *testing.T) {
	out := FormatTableI(RunTableI())
	for _, want := range []string{"Nodes", "Paper", "Model", "32", "13.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTableI missing %q:\n%s", want, out)
		}
	}
}

func TestRunReinstallValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero nodes should panic")
		}
	}()
	RunReinstall(ReinstallParams{})
}

func TestDeterministicRuns(t *testing.T) {
	a := RunReinstall(DefaultParams(16))
	b := RunReinstall(DefaultParams(16))
	if a.TotalSecs != b.TotalSecs {
		t.Errorf("non-deterministic: %.6f vs %.6f", a.TotalSecs, b.TotalSecs)
	}
}

// TestSequentialVsConcurrent pins the §5 contrast: integrating 16 nodes
// takes ~16 solo installs, while reinstalling the same 16 concurrently
// takes little more than one.
func TestSequentialVsConcurrent(t *testing.T) {
	p := DefaultParams(16)
	seq := SequentialIntegration(p)
	conc := RunReinstall(p)
	if seq.TotalSecs < 15*conc.TotalSecs/2 {
		t.Errorf("sequential %0.f s vs concurrent %.0f s: expected ~16x gap", seq.TotalSecs, conc.TotalSecs)
	}
	if math.Abs(seq.TotalSecs-16*618)/(16*618) > 0.02 {
		t.Errorf("sequential = %.0f s, want ~16 x 618", seq.TotalSecs)
	}
}

// TestBurstyDemandAblation: with lockstep wire-speed bursts, even 8
// identical nodes contend; the smoothed pipeline model keeps them at solo
// speed — documenting why the demand model follows the paper's 1 MB/s
// accounting.
func TestBurstyDemandAblation(t *testing.T) {
	smooth := RunReinstall(DefaultParams(8)).TotalSecs
	p := DefaultParams(8)
	p.Bursty = true
	bursty := RunReinstall(p).TotalSecs
	if bursty <= smooth*1.05 {
		t.Errorf("bursty %.0f s vs smooth %.0f s: bursts should contend", bursty, smooth)
	}
	// Solo is unaffected by the demand model (no contention to smooth).
	soloSmooth := RunReinstall(DefaultParams(1)).TotalSecs
	ps := DefaultParams(1)
	ps.Bursty = true
	soloBursty := RunReinstall(ps).TotalSecs
	if math.Abs(soloSmooth-soloBursty) > 1 {
		t.Errorf("solo differs across demand models: %.1f vs %.1f", soloSmooth, soloBursty)
	}
}

package experiments

import (
	"math"
	"testing"
)

// TestCurveFrontendOnlyCollapse checks the failure mode being measured:
// with every node fair-sharing the frontend NIC, the download phase is
// linear in N and the fleet completes essentially all at once.
func TestCurveFrontendOnlyCollapse(t *testing.T) {
	c := RunInstallCurve(DefaultFleetParams(1000, false))
	if len(c.Times) != 1000 {
		t.Fatalf("completed %d/1000 nodes", len(c.Times))
	}
	p := c.Params
	// Aggregate demand (1000 × ~1 MB/s) dwarfs the frontend NIC, so the
	// download phase is ≈ N·bytes/frontendBps.
	wantDI := float64(p.Nodes) * p.TotalBytes / p.FrontendBps
	want := p.PreSecs + wantDI + p.PostSecs
	if got := c.TimeToLast; math.Abs(got-want) > want*0.02 {
		t.Errorf("time-to-last = %.0fs, want ≈ %.0fs (fair-share collapse)", got, want)
	}
	// The collapse signature: 90% and 100% finish at nearly the same time.
	if c.TimeTo90 < 0.98*c.TimeToLast {
		t.Errorf("time-to-90 = %.0fs vs last %.0fs: expected simultaneous finish", c.TimeTo90, c.TimeToLast)
	}
	if c.PeerBytes != 0 {
		t.Errorf("frontend-only mode moved %.0f peer bytes", c.PeerBytes)
	}
}

// TestCurveRelaySpeedupAt1k is the acceptance bar: at 1k nodes the relay
// tier must beat frontend-only by at least 3× on time-to-last-node (it
// actually lands around an order of magnitude), and most bytes must come
// off peers rather than the frontend NIC.
func TestCurveRelaySpeedupAt1k(t *testing.T) {
	cmp := RunCurveComparison(1000)
	if n := len(cmp.Relay.Times); n != 1000 {
		t.Fatalf("relay mode completed %d/1000 nodes", n)
	}
	if s := cmp.Speedup(); s < 3 {
		t.Errorf("relay speedup = %.1f×, want ≥ 3× (frontend-only last %.0fs, relay last %.0fs)",
			s, cmp.FrontendOnly.TimeToLast, cmp.Relay.TimeToLast)
	}
	if cmp.Relay.PeerBytes <= cmp.Relay.FrontendBytes {
		t.Errorf("peers carried %.0f bytes vs frontend %.0f: relays should dominate",
			cmp.Relay.PeerBytes, cmp.Relay.FrontendBytes)
	}
	// Conservation: every node's install crossed exactly one source.
	total := cmp.Relay.PeerBytes + cmp.Relay.FrontendBytes
	if want := float64(1000) * cmp.Relay.Params.TotalBytes; total != want {
		t.Errorf("byte split sums to %.0f, want %.0f", total, want)
	}
	// Relay mode completes in staged waves, not one simultaneous collapse.
	if cmp.Relay.Waves < 3 {
		t.Errorf("relay curve has %d completion waves, want staged growth", cmp.Relay.Waves)
	}
	if cmp.Relay.TimeTo90 > cmp.Relay.TimeToLast {
		t.Errorf("time-to-90 %.0f after time-to-last %.0f", cmp.Relay.TimeTo90, cmp.Relay.TimeToLast)
	}
}

// TestCurveDeterministic: the scheduler (FIFO admission, stable source
// order) and simnet make the whole curve reproducible bit for bit.
func TestCurveDeterministic(t *testing.T) {
	a := RunInstallCurve(DefaultFleetParams(256, true))
	b := RunInstallCurve(DefaultFleetParams(256, true))
	if len(a.Times) != len(b.Times) {
		t.Fatalf("run lengths differ: %d vs %d", len(a.Times), len(b.Times))
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("completion %d differs: %v vs %v", i, a.Times[i], b.Times[i])
		}
	}
	if a.PeerBytes != b.PeerBytes || a.FrontendBytes != b.FrontendBytes {
		t.Fatalf("byte splits differ: (%v,%v) vs (%v,%v)",
			a.PeerBytes, a.FrontendBytes, b.PeerBytes, b.FrontendBytes)
	}
}

// TestCurveSmallFleetHonest documents the crossover: at one rack (32
// nodes) the staged relay waves can lose to the simple fair-share scrum —
// the relay tier pays off at scale, and the model should say so rather
// than flatter it.
func TestCurveSmallFleetHonest(t *testing.T) {
	cmp := RunCurveComparison(32)
	if n := len(cmp.Relay.Times); n != 32 {
		t.Fatalf("relay mode completed %d/32 nodes", n)
	}
	if n := len(cmp.FrontendOnly.Times); n != 32 {
		t.Fatalf("frontend-only completed %d/32 nodes", n)
	}
	// No acceptance bar here — just sanity that both finish in the same
	// order of magnitude at a size the frontend NIC can still carry.
	if cmp.Relay.TimeToLast > 4*cmp.FrontendOnly.TimeToLast {
		t.Errorf("relay pathological at 32 nodes: %.0fs vs %.0fs",
			cmp.Relay.TimeToLast, cmp.FrontendOnly.TimeToLast)
	}
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"rocks/internal/simnet"
)

// The peer/relay distribution experiment: what breaks a 1k–10k-node mass
// reinstall is the frontend NIC. Under frontend-only distribution every
// installing node fair-shares one 100 Mbit port, so the download phase is
// linear in N and every node finishes at roughly the same (late) moment —
// the fair-share collapse. Under relay distribution a node that completes
// becomes a package source for its peers, so serving capacity grows
// exponentially wave over wave and the completion curve collapses to a
// logarithmic number of install waves.
//
// The model is admission-controlled: each source (the frontend, then every
// completed relay) serves a bounded number of concurrent install streams —
// the registry's prioritized source list in the live plane — and a node
// waits for a slot rather than joining an unbounded fair-share scrum. Racks
// are modeled as shared uplinks: fetching from a same-rack peer stays
// inside the rack switch, fetching cross-rack crosses both uplinks, and
// fetching from the frontend crosses the frontend NIC plus the node's rack
// uplink.

// gigabitBps is a Gigabit rack uplink's raw capacity in bytes/second.
const gigabitBps = 125e6

// FleetParams parameterizes one install-completion-curve experiment.
type FleetParams struct {
	// Nodes is the fleet size; RackSize nodes share one uplink.
	Nodes    int
	RackSize int
	// FrontendBps is the frontend NIC's capacity in bytes/second — the
	// paper's dual-PIII frontend on Fast Ethernet: ~92% utilization of
	// 100 Mbit ≈ 11.5 MB/s.
	FrontendBps float64
	// UplinkBps is one rack's uplink capacity (Gigabit by default).
	UplinkBps float64
	// NodeBps is a compute node's NIC capacity (Fast Ethernet).
	NodeBps float64
	// TotalBytes is one install's wire traffic and DISecs its solo
	// download-and-install time; zero means the real compute profile
	// (~225 MB, 223 s — the §6.3 calibration). The smoothed anaconda
	// pipeline presents TotalBytes/DISecs ≈ 1 MB/s of demand per node.
	TotalBytes float64
	DISecs     float64
	// PreSecs is power-on → first package byte; PostSecs is
	// post-configuration, the Myrinet driver rebuild, and the final
	// reboot. A relay starts serving only after PostSecs (install-complete
	// is what promotes it).
	PreSecs  float64
	PostSecs float64
	// Relay enables the peer tier. SourceStreams is the admission cap: how
	// many concurrent install streams one source (frontend or relay)
	// serves. Frontend-only mode ignores it — every node fair-shares the
	// frontend NIC, which is exactly the failure being measured.
	Relay         bool
	SourceStreams int
}

// DefaultFleetParams returns the paper-hardware configuration for n nodes.
func DefaultFleetParams(n int, relay bool) FleetParams {
	work := ComputePackageWork()
	var total float64
	for _, w := range work {
		total += w.Bytes
	}
	return FleetParams{
		Nodes:         n,
		RackSize:      32,
		FrontendBps:   mbps(11.5),
		UplinkBps:     gigabitBps,
		NodeBps:       fastEthernetBps,
		TotalBytes:    total,
		DISecs:        223,
		PreSecs:       60,
		PostSecs:      335, // post configuration + GM rebuild + reboot
		Relay:         relay,
		SourceStreams: 8,
	}
}

// CompletionCurve is one experiment's outcome: every node's completion
// time, the curve's two headline quantiles, and the byte split that shows
// whose NIC carried the install.
type CompletionCurve struct {
	Params     FleetParams
	Times      []float64 // sorted install-complete times, seconds
	TimeTo90   float64   // when 90% of the fleet had completed
	TimeToLast float64   // when the last node completed
	// FrontendBytes crossed the frontend NIC; PeerBytes came from relays.
	FrontendBytes float64
	PeerBytes     float64
	// Waves counts distinct completion instants (rounded to the second) —
	// the staged-growth signature of relay mode.
	Waves int
}

// installSource is one place the scheduler can draw a package stream from.
type installSource struct {
	nic  *simnet.Link // nil for the frontend (its NIC is shared state)
	rack int          // -1 for the frontend
	free int
}

// RunInstallCurve simulates one mass reinstall and returns its completion
// curve. Deterministic: same params, same curve.
func RunInstallCurve(p FleetParams) CompletionCurve {
	if p.Nodes <= 0 {
		panic("experiments: need at least one node")
	}
	if p.RackSize <= 0 {
		p.RackSize = 32
	}
	if p.TotalBytes <= 0 || p.DISecs <= 0 {
		d := DefaultFleetParams(p.Nodes, p.Relay)
		p.TotalBytes, p.DISecs = d.TotalBytes, d.DISecs
	}
	if p.SourceStreams <= 0 {
		p.SourceStreams = 8
	}
	effRate := p.TotalBytes / p.DISecs // the smoothed ~1 MB/s demand model

	sim := simnet.New()
	feNIC := sim.NewLink("frontend-nic", p.FrontendBps)
	racks := (p.Nodes + p.RackSize - 1) / p.RackSize
	uplink := make([]*simnet.Link, racks)
	for r := range uplink {
		uplink[r] = sim.NewLink(fmt.Sprintf("rack-%d-uplink", r), p.UplinkBps)
	}
	nodeNIC := make([]*simnet.Link, p.Nodes)
	rackOf := make([]int, p.Nodes)
	for i := range nodeNIC {
		nodeNIC[i] = sim.NewLink(fmt.Sprintf("node-%d-nic", i), p.NodeBps)
		rackOf[i] = i / p.RackSize
	}

	curve := CompletionCurve{Params: p, Times: make([]float64, 0, p.Nodes)}

	if !p.Relay {
		// Frontend-only: every node joins the fair-share scrum at once.
		for i := 0; i < p.Nodes; i++ {
			i := i
			path := []*simnet.Link{feNIC, uplink[rackOf[i]], nodeNIC[i]}
			sim.After(p.PreSecs, func() {
				curve.FrontendBytes += p.TotalBytes
				sim.StartFlow(fmt.Sprintf("install-%d", i), p.TotalBytes, path, effRate, func() {
					sim.After(p.PostSecs, func() {
						curve.Times = append(curve.Times, sim.Now())
					})
				})
			})
		}
		sim.Run()
		return finishCurve(curve)
	}

	// Relay mode: an admission-controlled scheduler. sources[0] is the
	// frontend; completed nodes append in completion order (deterministic).
	sources := []*installSource{{rack: -1, free: p.SourceStreams}}
	queue := make([]int, 0, p.Nodes)

	var dispatch func()
	start := func(src *installSource, n int) {
		var path []*simnet.Link
		switch {
		case src.rack < 0:
			path = []*simnet.Link{feNIC, uplink[rackOf[n]], nodeNIC[n]}
			curve.FrontendBytes += p.TotalBytes
		case src.rack == rackOf[n]:
			// Same rack: the stream never leaves the rack switch.
			path = []*simnet.Link{src.nic, nodeNIC[n]}
			curve.PeerBytes += p.TotalBytes
		default:
			path = []*simnet.Link{src.nic, uplink[src.rack], uplink[rackOf[n]], nodeNIC[n]}
			curve.PeerBytes += p.TotalBytes
		}
		sim.StartFlow(fmt.Sprintf("install-%d", n), p.TotalBytes, path, effRate, func() {
			// The source's slot frees when the transfer ends; the client
			// only becomes a relay after its post phase (install-complete).
			src.free++
			dispatch()
			sim.After(p.PostSecs, func() {
				curve.Times = append(curve.Times, sim.Now())
				sources = append(sources, &installSource{
					nic: nodeNIC[n], rack: rackOf[n], free: p.SourceStreams,
				})
				dispatch()
			})
		})
	}
	dispatch = func() {
		for len(queue) > 0 {
			n := queue[0]
			// Prefer a same-rack relay (no uplink crossing), then any
			// source with a free slot — the frontend sits at index 0, so
			// it seeds the first wave and backstops thereafter.
			var pick *installSource
			for _, s := range sources {
				if s.free > 0 && s.rack == rackOf[n] {
					pick = s
					break
				}
			}
			if pick == nil {
				for _, s := range sources {
					if s.free > 0 {
						pick = s
						break
					}
				}
			}
			if pick == nil {
				return
			}
			queue = queue[1:]
			pick.free--
			start(pick, n)
		}
	}
	sim.After(p.PreSecs, func() {
		for i := 0; i < p.Nodes; i++ {
			queue = append(queue, i)
		}
		dispatch()
	})
	sim.Run()
	return finishCurve(curve)
}

// finishCurve sorts the completion times and derives the headline figures.
func finishCurve(c CompletionCurve) CompletionCurve {
	sort.Float64s(c.Times)
	n := len(c.Times)
	if n == 0 {
		return c
	}
	i90 := int(math.Ceil(0.9*float64(n))) - 1
	c.TimeTo90 = c.Times[i90]
	c.TimeToLast = c.Times[n-1]
	last := math.Inf(-1)
	for _, t := range c.Times {
		if sec := math.Floor(t); sec != last {
			c.Waves++
			last = sec
		}
	}
	return c
}

// CurveComparison pairs both modes at one fleet size.
type CurveComparison struct {
	Nodes        int
	FrontendOnly CompletionCurve
	Relay        CompletionCurve
}

// Speedup reports how much faster relay mode finished the whole fleet.
func (c CurveComparison) Speedup() float64 {
	if c.Relay.TimeToLast == 0 {
		return 0
	}
	return c.FrontendOnly.TimeToLast / c.Relay.TimeToLast
}

// RunCurveComparison runs both modes at one fleet size.
func RunCurveComparison(n int) CurveComparison {
	return CurveComparison{
		Nodes:        n,
		FrontendOnly: RunInstallCurve(DefaultFleetParams(n, false)),
		Relay:        RunInstallCurve(DefaultFleetParams(n, true)),
	}
}

// FormatCurves renders the comparison the way cluster-sim prints it.
func FormatCurves(rows []CurveComparison) string {
	s := fmt.Sprintf("%-7s %-26s %-26s %-9s\n", "Nodes",
		"Frontend-only 90%/last (s)", "Relay 90%/last (s)", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-7d %-26s %-26s %-9.1f\n", r.Nodes,
			fmt.Sprintf("%.0f / %.0f", r.FrontendOnly.TimeTo90, r.FrontendOnly.TimeToLast),
			fmt.Sprintf("%.0f / %.0f", r.Relay.TimeTo90, r.Relay.TimeToLast),
			r.Speedup())
	}
	return s
}

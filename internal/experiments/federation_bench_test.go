package experiments

import "testing"

// BenchmarkFederationCurve is the PR-9 headline: a 10k-node fleet split
// across 8 child frontends versus the same fleet on one frontend, with the
// hierarchy costed both cold (full cascade mirror) and warm (delta
// re-mirror of an unchanged tree, zero bodies). The reported vsec_* values
// are simulated seconds, not wall time.
func BenchmarkFederationCurve(b *testing.B) {
	for _, mode := range []struct {
		name  string
		relay bool
	}{{"frontend", false}, {"relay", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cmp FederationComparison
			for i := 0; i < b.N; i++ {
				cmp = RunFederationComparison(10000, 8, mode.relay)
			}
			b.ReportMetric(cmp.Single.TimeToLast, "vsec_single_last")
			b.ReportMetric(cmp.FullMirror.TimeToLast, "vsec_full_mirror_last")
			b.ReportMetric(cmp.DeltaMirror.TimeToLast, "vsec_delta_last")
			b.ReportMetric(cmp.DeltaMirror.TimeTo90, "vsec_delta_to_90%")
			b.ReportMetric(cmp.FullMirror.MirrorSecs, "vsec_mirror_cascade")
			b.ReportMetric(cmp.Speedup(), "x_speedup")
		})
	}
}

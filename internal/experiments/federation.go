package experiments

import (
	"fmt"
	"math"
	"sort"
)

// The federation experiment: what the relay tier does for package bytes,
// the frontend *hierarchy* does for the frontend itself. A single frontend
// serving a 10k-node fleet is a management and distribution chokepoint
// even when peers carry most package traffic — every kickstart render,
// DHCP lease, and first-wave package stream still crosses one NIC. The
// federated hierarchy shards the fleet across child frontends, each a full
// frontend for its shard, fed from the top by a cascading mirror. The cost
// of standing up the hierarchy is the mirror phase: every child pulls the
// distribution from its parent before its shard can install. A *delta*
// re-mirror of an unchanged tree moves zero package bodies — the cascade
// is manifest-only — which is what makes re-running the fleet cheap after
// the first replication.

// FederationParams parameterizes one federated mass-reinstall experiment.
type FederationParams struct {
	// Nodes is the whole fleet; Shards is how many child frontends it is
	// split across (round-robin remainder).
	Nodes  int
	Shards int
	// Relay enables the peer tier inside each shard.
	Relay bool
	// MirrorBytes is what each child frontend must pull from the top
	// before its shard can start installing. Zero models the delta
	// re-mirror of an unchanged tree: manifest traffic only, no bodies.
	MirrorBytes float64
}

// FederationCurve is a federated run's outcome: the merged completion
// curve across every shard, plus the per-shard curves it merged.
type FederationCurve struct {
	Params FederationParams
	// MirrorSecs is when the last child finished mirroring — the moment
	// installs may begin anywhere. All children pull concurrently and
	// fair-share the top frontend's NIC.
	MirrorSecs float64
	PerShard   []CompletionCurve
	Times      []float64 // merged, sorted install-complete times (seconds)
	TimeTo90   float64
	TimeToLast float64
	// FrontendBytes sums what crossed the child frontends' NICs (plus the
	// mirror bytes that crossed the top's); PeerBytes came from relays.
	FrontendBytes float64
	PeerBytes     float64
}

// RunFederationCurve simulates a sharded mass reinstall: a mirror phase
// cascading the distribution down, then every shard installing in parallel
// against its own child frontend. Deterministic.
func RunFederationCurve(p FederationParams) FederationCurve {
	if p.Nodes <= 0 || p.Shards <= 0 {
		panic("experiments: need at least one node and one shard")
	}
	base := DefaultFleetParams(p.Nodes, p.Relay)
	out := FederationCurve{Params: p, Times: make([]float64, 0, p.Nodes)}
	if p.MirrorBytes > 0 {
		// Every child mirrors concurrently, fair-sharing the top NIC: each
		// sees FrontendBps/Shards, so all finish together.
		out.MirrorSecs = p.MirrorBytes * float64(p.Shards) / base.FrontendBps
		out.FrontendBytes += p.MirrorBytes * float64(p.Shards)
	}
	for s := 0; s < p.Shards; s++ {
		size := p.Nodes / p.Shards
		if s < p.Nodes%p.Shards {
			size++
		}
		if size == 0 {
			continue
		}
		per := DefaultFleetParams(size, p.Relay)
		curve := RunInstallCurve(per)
		out.FrontendBytes += curve.FrontendBytes
		out.PeerBytes += curve.PeerBytes
		for i := range curve.Times {
			curve.Times[i] += out.MirrorSecs
		}
		curve.TimeTo90 += out.MirrorSecs
		curve.TimeToLast += out.MirrorSecs
		out.PerShard = append(out.PerShard, curve)
		out.Times = append(out.Times, curve.Times...)
	}
	sort.Float64s(out.Times)
	n := len(out.Times)
	out.TimeTo90 = out.Times[int(math.Ceil(0.9*float64(n)))-1]
	out.TimeToLast = out.Times[n-1]
	return out
}

// FederationComparison pits one frontend against the sharded hierarchy at
// a single fleet size, with the hierarchy costed both ways: a cold full
// mirror and the delta re-mirror of an unchanged tree.
type FederationComparison struct {
	Nodes  int
	Shards int
	Relay  bool
	// Single is the whole fleet on one frontend.
	Single CompletionCurve
	// FullMirror pays the cold cascade (every child pulls every body);
	// DeltaMirror pays nothing (unchanged tree, manifest-only cascade).
	FullMirror  FederationCurve
	DeltaMirror FederationCurve
}

// RunFederationComparison runs all three configurations.
func RunFederationComparison(nodes, shards int, relay bool) FederationComparison {
	base := DefaultFleetParams(nodes, relay)
	return FederationComparison{
		Nodes:  nodes,
		Shards: shards,
		Relay:  relay,
		Single: RunInstallCurve(base),
		FullMirror: RunFederationCurve(FederationParams{
			Nodes: nodes, Shards: shards, Relay: relay, MirrorBytes: base.TotalBytes,
		}),
		DeltaMirror: RunFederationCurve(FederationParams{
			Nodes: nodes, Shards: shards, Relay: relay,
		}),
	}
}

// Speedup reports how much faster the warm (delta-mirrored) hierarchy
// finished the whole fleet than the single frontend.
func (c FederationComparison) Speedup() float64 {
	if c.DeltaMirror.TimeToLast == 0 {
		return 0
	}
	return c.Single.TimeToLast / c.DeltaMirror.TimeToLast
}

// FormatFederationCurves renders comparisons the way cluster-sim prints
// them.
func FormatFederationCurves(rows []FederationComparison) string {
	s := fmt.Sprintf("%-7s %-7s %-9s %-17s %-20s %-20s %-8s\n",
		"Nodes", "Shards", "Relay", "Single last (s)", "Full-mirror last (s)", "Delta-mirror last (s)", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-7d %-7d %-9v %-17.0f %-20.0f %-20.0f %-8.1f\n",
			r.Nodes, r.Shards, r.Relay, r.Single.TimeToLast,
			r.FullMirror.TimeToLast, r.DeltaMirror.TimeToLast, r.Speedup())
	}
	return s
}

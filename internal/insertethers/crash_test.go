package insertethers

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rocks/internal/clusterdb"
	"rocks/internal/dhcp"
	"rocks/internal/faults"
	"rocks/internal/syslogd"
)

// The acceptance test for the durable clusterdb: a 1000-node discovery
// storm, killed at a seeded point at each durability seam, must recover —
// after redriving the same discovery sequence — to a dbreport (and full
// dump) byte-identical to a storm that never crashed. The §6.4 naming
// discipline makes this possible: rank and IP allocation are deterministic
// in discovery order, and already-known MACs are skipped, so replaying the
// same MAC sequence over the recovered database converges.

const stormNodes = 1000

// stormMAC is the i-th storming node's deterministic hardware address.
func stormMAC(i int) string {
	return fmt.Sprintf("00:11:22:%02x:%02x:%02x", i/65536, (i/256)%256, i%256)
}

// stormSession wires a discovery session over the given database.
func stormSession(t *testing.T, db *clusterdb.Database) *InsertEthers {
	t.Helper()
	log := syslogd.New()
	dhcpd := dhcp.NewServer("frontend-0", log)
	ie, err := Start(Config{DB: db, Syslog: log, DHCP: dhcpd, NextServer: "http://10.1.1.1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ie.Stop)
	return ie
}

// stormReports renders everything dbreport generates plus the raw dump —
// the byte-identity oracle.
func stormReports(t *testing.T, db *clusterdb.Database) string {
	t.Helper()
	var b strings.Builder
	for _, gen := range []func(*clusterdb.Database) (string, error){
		clusterdb.HostsReport, clusterdb.DHCPReport, clusterdb.PBSNodesReport,
		clusterdb.NodesTableReport, clusterdb.MembershipsTableReport,
	} {
		s, err := gen(db)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(s)
		b.WriteString("\n====\n")
	}
	b.WriteString(db.Dump())
	return b.String()
}

func TestCrashRecoveryDiscoveryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node storm")
	}
	// The uncrashed reference: a plain in-memory database driven through
	// the full storm.
	ref := clusterdb.New()
	if err := clusterdb.InitSchema(ref); err != nil {
		t.Fatal(err)
	}
	refIE := stormSession(t, ref)
	for i := 0; i < stormNodes; i++ {
		if err := refIE.Discover(stormMAC(i)); err != nil {
			t.Fatalf("reference discover %d: %v", i, err)
		}
	}
	want := stormReports(t, ref)

	seams := []faults.Op{faults.OpDBPreAppend, faults.OpDBPostAppend,
		faults.OpDBSnapshotMid, faults.OpDBRotateMid}
	for _, seam := range seams {
		t.Run(string(seam), func(t *testing.T) {
			dir := t.TempDir()
			// The crash point is seeded: the seed picks which discovery the
			// seam arms at, so every run kills the storm at the same spot and
			// a failure reproduces.
			seed := int64(42)
			crashAt := rand.New(rand.NewSource(seed)).Intn(stormNodes)
			inj := faults.NewInjector(seed)

			db, info, err := clusterdb.Open(dir, clusterdb.Options{SnapshotEvery: 128, Faults: inj})
			if err != nil {
				t.Fatal(err)
			}
			if !info.Fresh {
				t.Fatalf("fresh dir not fresh: %+v", info)
			}
			if err := clusterdb.InitSchema(db); err != nil {
				t.Fatal(err)
			}
			ie := stormSession(t, db)
			var crashErr error
			for i := 0; i < stormNodes; i++ {
				if i == crashAt {
					inj.AddRule(faults.Rule{Op: seam, Count: 1})
				}
				if err := ie.Discover(stormMAC(i)); err != nil {
					crashErr = err
					break
				}
			}
			if crashErr == nil {
				// Snapshot seams only fire on a rotation boundary; if the
				// storm ended first, force the rotation.
				crashErr = db.Snapshot()
			}
			if crashErr == nil || !strings.Contains(crashErr.Error(), "simulated crash") {
				t.Fatalf("storm did not crash at %s (armed at %d): %v", seam, crashAt, crashErr)
			}
			db.Close() // must not snapshot the frozen state

			// Recover and redrive the identical discovery sequence: known
			// MACs are skipped, missing ones allocate exactly the rank and
			// IP they got in the reference run.
			rec, info, err := clusterdb.Open(dir, clusterdb.Options{SnapshotEvery: 128})
			if err != nil {
				t.Fatalf("recovery after %s: %v", seam, err)
			}
			defer rec.Close()
			if err := clusterdb.InitSchema(rec); err != nil {
				t.Fatal(err)
			}
			rie := stormSession(t, rec)
			for i := 0; i < stormNodes; i++ {
				if err := rie.Discover(stormMAC(i)); err != nil {
					t.Fatalf("redrive discover %d: %v", i, err)
				}
			}
			if got := stormReports(t, rec); got != want {
				t.Errorf("recovered dbreport differs from uncrashed reference after %s crash at %d (recovery: %+v)",
					seam, crashAt, info)
			}
		})
	}
}

// TestTornTailStormRecovery kills the storm by tearing the log tail: the
// recovered database loses at most the unacknowledged final record, and the
// redriven storm still converges byte-identically.
func TestTornTailStormRecovery(t *testing.T) {
	ref := clusterdb.New()
	if err := clusterdb.InitSchema(ref); err != nil {
		t.Fatal(err)
	}
	refIE := stormSession(t, ref)
	const n = 200
	for i := 0; i < n; i++ {
		if err := refIE.Discover(stormMAC(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := stormReports(t, ref)

	for _, tear := range []struct {
		name string
		do   func(string) error
	}{
		{"truncate", func(wal string) error { return faults.TruncateTail(wal, 7) }},
		{"bitflip", func(wal string) error { return faults.FlipTailBit(wal, 2) }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			db, _, err := clusterdb.Open(dir, clusterdb.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := clusterdb.InitSchema(db); err != nil {
				t.Fatal(err)
			}
			ie := stormSession(t, db)
			for i := 0; i < n; i++ {
				if err := ie.Discover(stormMAC(i)); err != nil {
					t.Fatal(err)
				}
			}
			// kill -9: abandon the handle, then tear the tail on disk.
			if err := tear.do(dir + "/wal.log"); err != nil {
				t.Fatal(err)
			}
			rec, info, err := clusterdb.Open(dir, clusterdb.Options{})
			if err != nil {
				t.Fatalf("recovery after torn tail: %v", err)
			}
			defer rec.Close()
			if info.TornDropped != 1 {
				t.Fatalf("want exactly the torn final record dropped, got %+v", info)
			}
			rie := stormSession(t, rec)
			for i := 0; i < n; i++ {
				if err := rie.Discover(stormMAC(i)); err != nil {
					t.Fatalf("redrive %d: %v", i, err)
				}
			}
			if got := stormReports(t, rec); got != want {
				t.Error("torn-tail recovery + redrive differs from reference")
			}
		})
	}
}

// Package insertethers implements the discovery utility of §6.4:
// "Insert-ethers monitors syslog messages for DHCP requests from new hosts
// and when found, generates a hostname, determines the next free IP
// address, binds the hostname and IP address to its Ethernet MAC address,
// and inserts this information into the database. Insert-ethers then
// rebuilds service-specific configuration files by running queries against
// the database, and restarting the respective services."
package insertethers

import (
	"fmt"
	"strings"
	"sync"

	"rocks/internal/clusterdb"
	"rocks/internal/dhcp"
	"rocks/internal/lifecycle"
	"rocks/internal/syslogd"
)

// Config wires insert-ethers to the frontend's services.
type Config struct {
	DB     *clusterdb.Database
	Syslog *syslogd.Collector
	DHCP   *dhcp.Server
	// NextServer is the kickstart server handed to discovered nodes (the
	// frontend's HTTP base).
	NextServer string
	// Membership is the membership ID assigned to discovered nodes; the
	// administrator picks it when starting insert-ethers (Compute by
	// default, or NFS/Web/switch types for other appliances).
	Membership int
	// Rack is the cabinet being populated; nodes are named
	// <basename>-<rack>-<rank> in discovery order.
	Rack int
	// Arch records the hardware architecture for discovered nodes.
	Arch string
	// CPUs per discovered node (for the PBS report).
	CPUs int
	// OnInsert, if set, is called after each successful insertion and
	// report regeneration (the hook the UI uses to redraw its screen, and
	// tests use to synchronize).
	OnInsert func(clusterdb.Node)
	// Replace names an existing node whose hardware was swapped (§3.1:
	// clusters evolve as "failed components are replaced"). The next
	// unknown MAC is bound to that node's row — same hostname, same IP,
	// new Ethernet address — instead of creating a new row. After one
	// replacement the session reverts to normal insertion.
	Replace string
	// Events, when non-nil, receives discovered/bound/replaced lifecycle
	// events so timelines show a node's life from its very first
	// DHCPDISCOVER.
	Events *lifecycle.Bus
	// FullSync restores the legacy behavior of rebuilding the entire DHCP
	// binding table from the database after every discovery — the
	// "regenerate dhcpd.conf and restart dhcpd" cost the paper's tools
	// paid per node. Default false: each discovery applies only its own
	// binding delta, and the wholesale rebuild happens once per report
	// pass instead of once per node.
	FullSync bool
}

// InsertEthers is one running discovery session.
type InsertEthers struct {
	cfg    Config
	cancel func()
	done   chan struct{}

	mu       sync.Mutex
	inserted []clusterdb.Node
}

// Start begins monitoring syslog. Call Stop when the cabinet is fully
// discovered.
func Start(cfg Config) (*InsertEthers, error) {
	if cfg.DB == nil || cfg.Syslog == nil || cfg.DHCP == nil {
		return nil, fmt.Errorf("insertethers: DB, Syslog and DHCP are required")
	}
	if cfg.Membership == 0 {
		cfg.Membership = clusterdb.MembershipCompute
	}
	if cfg.Arch == "" {
		cfg.Arch = "i386"
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	ie := &InsertEthers{cfg: cfg, done: make(chan struct{})}
	ch, cancel := cfg.Syslog.Subscribe()
	ie.cancel = cancel
	go ie.loop(ch)
	return ie, nil
}

// Stop ends the discovery session.
func (ie *InsertEthers) Stop() {
	ie.cancel()
	<-ie.done
}

// Inserted returns the nodes added during this session, in discovery order.
func (ie *InsertEthers) Inserted() []clusterdb.Node {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return append([]clusterdb.Node(nil), ie.inserted...)
}

func (ie *InsertEthers) loop(ch <-chan syslogd.Message) {
	defer close(ie.done)
	for m := range ch {
		mac, ok := parseDiscover(m)
		if !ok {
			continue
		}
		if err := ie.insert(mac); err != nil {
			ie.cfg.Syslog.Log("frontend-0", "insert-ethers", "error inserting %s: %v", mac, err)
		}
	}
}

// parseDiscover extracts the MAC from a dhcpd DHCPDISCOVER log line.
func parseDiscover(m syslogd.Message) (string, bool) {
	if m.Tag != "dhcpd" {
		return "", false
	}
	fields := strings.Fields(m.Text)
	if len(fields) < 3 || fields[0] != "DHCPDISCOVER" || fields[1] != "from" {
		return "", false
	}
	return fields[2], true
}

// emit publishes one lifecycle event when a bus is wired.
func (ie *InsertEthers) emit(e lifecycle.Event) {
	if ie.cfg.Events != nil {
		e.Phase = lifecycle.PhaseDiscover
		e.Source = "insert-ethers"
		ie.cfg.Events.Publish(e)
	}
}

// insert performs the §6.4 sequence for one new MAC.
func (ie *InsertEthers) insert(mac string) error {
	cfg := ie.cfg
	// Already known? (Duplicate DISCOVER from a retrying node.)
	if _, known, err := clusterdb.NodeByMAC(cfg.DB, mac); err != nil || known {
		return err
	}
	// A genuinely new MAC: the node has no name yet, so the event carries
	// its MAC as the identity (timelines merge the two later).
	ie.emit(lifecycle.Event{Node: mac, MAC: mac, Type: lifecycle.EventDiscovered,
		Detail: "new MAC on the private network"})
	// Hardware replacement: bind the new MAC to the existing row.
	ie.mu.Lock()
	replace := ie.cfg.Replace
	ie.mu.Unlock()
	if replace != "" {
		old, ok, err := clusterdb.NodeByName(cfg.DB, replace)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("insertethers: --replace %s: no such node", replace)
		}
		// The MAC arrives from a syslog line and the hostname from the
		// administrator's flag; both go through escaping, never raw SQL.
		if err := clusterdb.RebindNodeMAC(cfg.DB, replace, mac); err != nil {
			return err
		}
		if err := ie.syncOne(old.MAC, mac, old.IP, old.Name); err != nil {
			return err
		}
		cfg.Syslog.Log("frontend-0", "insert-ethers",
			"replaced %s: %s -> %s", replace, old.MAC, mac)
		ie.emit(lifecycle.Event{Node: old.Name, MAC: mac, Type: lifecycle.EventReplaced,
			Detail: fmt.Sprintf("hardware swap: %s -> %s, keeps %s", old.MAC, mac, old.IP)})
		old.MAC = mac
		ie.mu.Lock()
		ie.cfg.Replace = "" // one-shot
		ie.inserted = append(ie.inserted, old)
		ie.mu.Unlock()
		if cfg.OnInsert != nil {
			cfg.OnInsert(old)
		}
		return nil
	}
	base, err := clusterdb.MembershipBasename(cfg.DB, cfg.Membership)
	if err != nil {
		return err
	}
	rank, err := clusterdb.NextRank(cfg.DB, cfg.Membership, cfg.Rack)
	if err != nil {
		return err
	}
	ip, err := clusterdb.NextFreeIP(cfg.DB)
	if err != nil {
		return err
	}
	n := clusterdb.Node{
		MAC:        mac,
		Name:       fmt.Sprintf("%s-%d-%d", base, cfg.Rack, rank),
		Membership: cfg.Membership,
		Rack:       cfg.Rack,
		Rank:       rank,
		IP:         ip,
		Comment:    "Discovered by insert-ethers",
		Arch:       cfg.Arch,
		CPUs:       cfg.CPUs,
	}
	n, err = clusterdb.InsertNode(cfg.DB, n)
	if err != nil {
		return err
	}
	// Hand the node its DHCP binding so its next DISCOVER succeeds. The
	// delta path touches only this node's entry; the wholesale rebuild
	// (dbreport + dhcpd restart) is left to the coalesced report pass.
	if err := ie.syncOne("", n.MAC, n.IP, n.Name); err != nil {
		return err
	}
	cfg.Syslog.Log("frontend-0", "insert-ethers",
		"inserted %s (%s) at %s", n.Name, n.MAC, n.IP)
	ie.emit(lifecycle.Event{Node: n.Name, MAC: n.MAC, Type: lifecycle.EventBound,
		Detail: fmt.Sprintf("bound to %s", n.IP)})
	ie.mu.Lock()
	ie.inserted = append(ie.inserted, n)
	ie.mu.Unlock()
	if cfg.OnInsert != nil {
		cfg.OnInsert(n)
	}
	return nil
}

// Discover runs the discovery sequence for one MAC synchronously, as if a
// DHCPDISCOVER syslog line had just arrived — the entry point benchmarks
// and tools use to drive insertion without racing a lossy syslog channel.
func (ie *InsertEthers) Discover(mac string) error {
	return ie.insert(mac)
}

// syncOne applies a single node's DHCP binding delta: drop the old MAC's
// binding (hardware replacement) and bind the new one. Under FullSync it
// instead rebuilds the whole table the way the original tools did.
func (ie *InsertEthers) syncOne(oldMAC, mac, ip, hostname string) error {
	cfg := ie.cfg
	if cfg.FullSync {
		return SyncDHCP(cfg.DB, cfg.DHCP, cfg.NextServer)
	}
	if oldMAC != "" && oldMAC != mac {
		cfg.DHCP.RemoveBinding(oldMAC)
	}
	if mac != "" && ip != "" {
		cfg.DHCP.SetBinding(mac, dhcp.Binding{IP: ip, Hostname: hostname, NextServer: cfg.NextServer})
	}
	return nil
}

// SyncDHCP regenerates the DHCP server's bindings from the nodes table —
// the equivalent of writing /etc/dhcpd.conf from a dbreport and restarting
// dhcpd.
func SyncDHCP(db *clusterdb.Database, srv *dhcp.Server, nextServer string) error {
	nodes, err := clusterdb.Nodes(db, "")
	if err != nil {
		return err
	}
	want := make(map[string]dhcp.Binding, len(nodes))
	for _, n := range nodes {
		if n.MAC == "" || n.IP == "" {
			continue
		}
		want[n.MAC] = dhcp.Binding{IP: n.IP, Hostname: n.Name, NextServer: nextServer}
	}
	// Replace the table wholesale (a restart reloads the whole config).
	for mac := range srv.Bindings() {
		if _, ok := want[mac]; !ok {
			srv.RemoveBinding(mac)
		}
	}
	for mac, b := range want {
		srv.SetBinding(mac, b)
	}
	return nil
}

// Screen renders the discovery session's status display — the information
// the real insert-ethers presented in its text UI: the appliance type being
// inserted and the nodes found so far, newest last.
func (ie *InsertEthers) Screen() string {
	ie.mu.Lock()
	inserted := append([]clusterdb.Node(nil), ie.inserted...)
	membership := ie.cfg.Membership
	rack := ie.cfg.Rack
	ie.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "+-------------------- Inserted Appliances --------------------+\n")
	fmt.Fprintf(&b, "| membership %-3d rack %-3d %36s |\n", membership, rack, "")
	if len(inserted) == 0 {
		fmt.Fprintf(&b, "| %-60s |\n", "waiting for new nodes to DHCP...")
	}
	for _, n := range inserted {
		fmt.Fprintf(&b, "| %-16s %-20s %-22s |\n", n.Name, n.MAC, n.IP)
	}
	fmt.Fprintf(&b, "+--------------------------------------------------------------+\n")
	return b.String()
}

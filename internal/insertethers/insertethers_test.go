package insertethers

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/dhcp"
	"rocks/internal/lifecycle"
	"rocks/internal/syslogd"
)

type fixture struct {
	db    *clusterdb.Database
	log   *syslogd.Collector
	bus   *dhcp.Bus
	dhcpd *dhcp.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		db:  clusterdb.New(),
		log: syslogd.New(),
		bus: dhcp.NewBus(),
	}
	if err := clusterdb.InitSchema(f.db); err != nil {
		t.Fatal(err)
	}
	f.dhcpd = dhcp.NewServer("frontend-0", f.log)
	f.bus.Register(f.dhcpd)
	// The frontend itself occupies 10.1.1.1.
	clusterdb.InsertNode(f.db, clusterdb.Node{MAC: "fe:fe:fe:fe:fe:fe", Name: "frontend-0",
		Membership: clusterdb.MembershipFrontend, IP: "10.1.1.1"})
	return f
}

func (f *fixture) start(t *testing.T, cfg Config) (*InsertEthers, chan clusterdb.Node) {
	t.Helper()
	inserted := make(chan clusterdb.Node, 64)
	cfg.DB = f.db
	cfg.Syslog = f.log
	cfg.DHCP = f.dhcpd
	if cfg.NextServer == "" {
		cfg.NextServer = "http://10.1.1.1"
	}
	cfg.OnInsert = func(n clusterdb.Node) { inserted <- n }
	ie, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ie.Stop)
	return ie, inserted
}

// discover emulates a node broadcasting DISCOVER until it gets an offer.
func (f *fixture) discover(t *testing.T, mac string) dhcp.Packet {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reply, ok := f.bus.Broadcast(dhcp.Packet{Type: dhcp.Discover, MAC: mac}); ok {
			return reply
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("node %s never received an offer", mac)
	return dhcp.Packet{}
}

func TestDiscoverySequence(t *testing.T) {
	f := newFixture(t)
	_, inserted := f.start(t, Config{Rack: 0})

	// Boot three nodes sequentially, as §6.4 prescribes for rack/rank
	// assignment.
	var macs = []string{"00:50:8b:e0:3a:a7", "00:50:8b:e0:44:5e", "00:50:8b:e0:40:95"}
	for i, mac := range macs {
		offer := f.discover(t, mac)
		n := <-inserted
		if n.Name != fmt.Sprintf("compute-0-%d", i) {
			t.Errorf("node %d named %s", i, n.Name)
		}
		if offer.Hostname != n.Name || offer.YourIP != n.IP {
			t.Errorf("offer %+v does not match inserted node %+v", offer, n)
		}
		if offer.NextServer != "http://10.1.1.1" {
			t.Errorf("next-server = %q", offer.NextServer)
		}
	}
	// IPs descend from the top of the private space.
	nodes, _ := clusterdb.Nodes(f.db, "membership = 2")
	if len(nodes) != 3 {
		t.Fatalf("db has %d compute nodes", len(nodes))
	}
	if nodes[0].IP != "10.255.255.254" || nodes[2].IP != "10.255.255.252" {
		t.Errorf("IPs = %s, %s, %s", nodes[0].IP, nodes[1].IP, nodes[2].IP)
	}
}

func TestDuplicateDiscoverInsertsOnce(t *testing.T) {
	f := newFixture(t)
	ie, inserted := f.start(t, Config{})
	f.discover(t, "aa:aa:aa:aa:aa:aa")
	<-inserted
	// The node retries DISCOVER (it does, constantly, while waiting): no
	// second row may appear.
	for i := 0; i < 5; i++ {
		f.bus.Broadcast(dhcp.Packet{Type: dhcp.Discover, MAC: "aa:aa:aa:aa:aa:aa"})
	}
	time.Sleep(20 * time.Millisecond)
	nodes, _ := clusterdb.Nodes(f.db, "membership = 2")
	if len(nodes) != 1 {
		t.Errorf("duplicate DISCOVER created %d rows", len(nodes))
	}
	if got := ie.Inserted(); len(got) != 1 {
		t.Errorf("Inserted = %v", got)
	}
}

func TestMembershipSelection(t *testing.T) {
	f := newFixture(t)
	// Discover an NFS appliance instead of compute nodes.
	id, err := clusterdb.AddMembership(f.db, "NFS", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	_, inserted := f.start(t, Config{Membership: id, Rack: 0})
	f.discover(t, "00:50:8b:a5:4d:b1")
	n := <-inserted
	if n.Name != "nfs-0-0" {
		t.Errorf("name = %s, want nfs-0-0", n.Name)
	}
}

func TestRackNumbering(t *testing.T) {
	f := newFixture(t)
	_, inserted := f.start(t, Config{Rack: 1})
	f.discover(t, "bb:bb:bb:bb:bb:01")
	n := <-inserted
	if n.Name != "compute-1-0" || n.Rack != 1 || n.Rank != 0 {
		t.Errorf("node = %+v", n)
	}
}

func TestSyslogTrail(t *testing.T) {
	f := newFixture(t)
	_, inserted := f.start(t, Config{})
	f.discover(t, "cc:cc:cc:cc:cc:01")
	<-inserted
	if len(f.log.Grep("no free leases")) == 0 {
		t.Error("dhcpd's unknown-MAC line missing")
	}
	if len(f.log.Grep("inserted compute-0-0")) == 0 {
		t.Error("insert-ethers trail missing")
	}
}

func TestSyncDHCPRemovesDeletedNodes(t *testing.T) {
	f := newFixture(t)
	_, inserted := f.start(t, Config{})
	f.discover(t, "dd:dd:dd:dd:dd:01")
	n := <-inserted
	// Administrator removes the node from the database and regenerates.
	if err := clusterdb.DeleteNode(f.db, n.Name); err != nil {
		t.Fatal(err)
	}
	if err := SyncDHCP(f.db, f.dhcpd, "http://10.1.1.1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.dhcpd.HandleDHCP(dhcp.Packet{Type: dhcp.Request, MAC: "dd:dd:dd:dd:dd:01"}); ok {
		t.Error("deleted node still has a DHCP binding")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("Start without services accepted")
	}
}

func TestReplaceSwappedHardware(t *testing.T) {
	f := newFixture(t)
	// Original node discovered normally.
	ie1, inserted := f.start(t, Config{})
	f.discover(t, "aa:aa:aa:aa:aa:01")
	orig := <-inserted
	// Only one insert-ethers session runs at a time: end discovery before
	// starting the replacement session, or both would race for the new MAC.
	ie1.Stop()

	// The motherboard dies; a replacement with a fresh NIC arrives. A new
	// session with Replace set binds the new MAC to the old identity.
	ie2, err := Start(Config{DB: f.db, Syslog: f.log, DHCP: f.dhcpd,
		NextServer: "http://10.1.1.1", Replace: orig.Name})
	if err != nil {
		t.Fatal(err)
	}
	defer ie2.Stop()
	offer := f.discover(t, "bb:bb:bb:bb:bb:02")
	if offer.Hostname != orig.Name || offer.YourIP != orig.IP {
		t.Fatalf("replacement got %+v, want the original identity %s/%s", offer, orig.Name, orig.IP)
	}
	n, ok, _ := clusterdb.NodeByMAC(f.db, "bb:bb:bb:bb:bb:02")
	if !ok || n.Name != orig.Name {
		t.Errorf("db row = %+v, %v", n, ok)
	}
	if _, ok, _ := clusterdb.NodeByMAC(f.db, "aa:aa:aa:aa:aa:01"); ok {
		t.Error("old MAC still bound")
	}
	// One-shot: the next unknown MAC inserts normally.
	offer = f.discover(t, "cc:cc:cc:cc:cc:03")
	if offer.Hostname == orig.Name {
		t.Error("replace mode leaked to a second MAC")
	}
	nodes, _ := clusterdb.Nodes(f.db, "membership = 2")
	if len(nodes) != 2 {
		t.Errorf("compute rows = %d, want 2", len(nodes))
	}
}

func TestReplaceUnknownNodeLogsError(t *testing.T) {
	f := newFixture(t)
	ie, err := Start(Config{DB: f.db, Syslog: f.log, DHCP: f.dhcpd,
		NextServer: "http://10.1.1.1", Replace: "ghost-9-9"})
	if err != nil {
		t.Fatal(err)
	}
	defer ie.Stop()
	f.bus.Broadcast(dhcp.Packet{Type: dhcp.Discover, MAC: "dd:dd:dd:dd:dd:04"})
	if _, ok := f.log.WaitFor(func(m syslogd.Message) bool {
		return strings.Contains(m.Text, "no such node")
	}, 2*time.Second); !ok {
		t.Error("replacement error not logged")
	}
}

func TestScreenRendering(t *testing.T) {
	f := newFixture(t)
	ie, inserted := f.start(t, Config{Rack: 0})
	if !strings.Contains(ie.Screen(), "waiting for new nodes") {
		t.Errorf("empty screen = %q", ie.Screen())
	}
	f.discover(t, "ee:ee:ee:ee:ee:01")
	<-inserted
	screen := ie.Screen()
	for _, want := range []string{"Inserted Appliances", "compute-0-0", "ee:ee:ee:ee:ee:01", "10.255.255.254"} {
		if !strings.Contains(screen, want) {
			t.Errorf("screen missing %q:\n%s", want, screen)
		}
	}
}

// TestDiscoveryEvents: a wired lifecycle bus sees the §6.4 sequence as
// typed events — discovered (MAC-identified, no name yet), then bound once
// the row and DHCP binding exist — and a hardware replacement publishes
// replaced under the surviving hostname.
func TestDiscoveryEvents(t *testing.T) {
	f := newFixture(t)
	bus := lifecycle.NewBus(0)
	ie1, inserted := f.start(t, Config{Events: bus})
	f.discover(t, "aa:aa:aa:aa:aa:01")
	orig := <-inserted

	events := bus.Timeline("aa:aa:aa:aa:aa:01")
	if len(events) != 2 {
		t.Fatalf("events = %d (%v), want discovered+bound", len(events), events)
	}
	d, b := events[0], events[1]
	if d.Type != lifecycle.EventDiscovered || d.Node != "aa:aa:aa:aa:aa:01" || d.MAC != "aa:aa:aa:aa:aa:01" {
		t.Errorf("discovered = %+v", d)
	}
	if b.Type != lifecycle.EventBound || b.Node != orig.Name || b.MAC != "aa:aa:aa:aa:aa:01" ||
		!strings.Contains(b.Detail, orig.IP) {
		t.Errorf("bound = %+v", b)
	}
	for _, e := range events {
		if e.Phase != lifecycle.PhaseDiscover || e.Source != "insert-ethers" {
			t.Errorf("wrong phase/source: %+v", e)
		}
	}
	// A duplicate DISCOVER publishes nothing: the MAC is already known.
	before := bus.Seq()
	f.discover(t, "aa:aa:aa:aa:aa:01")
	if bus.Seq() != before {
		t.Errorf("duplicate DISCOVER published %d events", bus.Seq()-before)
	}
	ie1.Stop()

	// Hardware swap: the replacement session publishes replaced under the
	// node's (surviving) hostname with the new MAC.
	ie2, err := Start(Config{DB: f.db, Syslog: f.log, DHCP: f.dhcpd,
		NextServer: "http://10.1.1.1", Replace: orig.Name, Events: bus})
	if err != nil {
		t.Fatal(err)
	}
	defer ie2.Stop()
	f.discover(t, "bb:bb:bb:bb:bb:02")
	var replaced []lifecycle.Event
	for _, e := range bus.Timeline(orig.Name) {
		if e.Type == lifecycle.EventReplaced {
			replaced = append(replaced, e)
		}
	}
	if len(replaced) != 1 || replaced[0].MAC != "bb:bb:bb:bb:bb:02" {
		t.Errorf("replaced events = %v", replaced)
	}
}

// Package apiclient is the cmd/ tools' client for a frontend's versioned
// control plane: GET for reads, POST for mutations, the one /v1 envelope
// ({"data": ...} / {"error": {code, message, status}}) decoded in one
// place, and the caller's identity sent as X-Rocks-Actor so every mutation
// lands in the frontend's audit log with a name attached.
package apiclient

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

// APIError is the structured error the /v1 surface returns.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Client talks to one frontend.
type Client struct {
	// Base is the frontend URL, e.g. http://127.0.0.1:8070.
	Base string
	// Actor identifies the caller in the audit log; New defaults it to
	// $USER.
	Actor string
	// HTTP is the underlying client; nil means a 60s-timeout default.
	HTTP *http.Client
}

// New builds a client for the frontend at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimSuffix(base, "/"), Actor: os.Getenv("USER")}
}

// Get performs a read: GET /v1/<op>?<params>, decoding the data envelope
// into out (out may be nil to discard).
func (c *Client) Get(op string, params url.Values, out interface{}) error {
	u := c.Base + "/v1/" + op
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// Post performs a mutation: POST /v1/<op> with form-encoded params.
func (c *Client) Post(op string, params url.Values, out interface{}) error {
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/"+op,
		strings.NewReader(params.Encode()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out interface{}) error {
	if c.Actor != "" {
		req.Header.Set("X-Rocks-Actor", c.Actor)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 60 * time.Second}
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *APIError       `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("%s: undecodable response (HTTP %d): %.200s",
			req.URL.Path, resp.StatusCode, body)
	}
	if env.Error != nil {
		return env.Error
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %.200s", req.URL.Path, resp.StatusCode, body)
	}
	if out == nil || len(env.Data) == 0 {
		return nil
	}
	return json.Unmarshal(env.Data, out)
}

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark
// regenerates the corresponding artifact; custom metrics report the figures
// the paper prints (minutes, MB/s, package counts) so `go test -bench=.`
// reproduces the evaluation in one run. EXPERIMENTS.md records the
// paper-versus-measured comparison.
package rocks_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/dist"
	"rocks/internal/experiments"
	"rocks/internal/hardware"
	"rocks/internal/installer"
	"rocks/internal/kickstart"
	"rocks/internal/node"
	"rocks/internal/rpm"
	"rocks/internal/simnet"
)

// --- Table I: reinstallation performance --------------------------------

// BenchmarkTableI_Reinstall regenerates Table I: total time to reinstall
// 1-32 nodes concurrently from a single HTTP server. The modeled minutes
// are reported as the "min" metric next to the paper's measurement.
func BenchmarkTableI_Reinstall(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var r experiments.ReinstallResult
			for i := 0; i < b.N; i++ {
				r = experiments.RunReinstall(experiments.DefaultParams(n))
			}
			b.ReportMetric(r.TotalMinutes(), "model-min")
			b.ReportMetric(experiments.PaperTableI[n], "paper-min")
		})
	}
}

// --- Table II: the nodes table -------------------------------------------

// paperNodesDB rebuilds the exact database of Table II.
func paperNodesDB(b *testing.B) *clusterdb.Database {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	clusterdb.AddMembership(db, "NFS", 7, false)
	clusterdb.AddMembership(db, "Web", 8, false)
	rows := []clusterdb.Node{
		{MAC: "00:30:c1:d8:ac:80", Name: "frontend-0", Membership: 1, IP: "10.1.1.1", Comment: "Gateway machine"},
		{MAC: "00:01:e7:1a:be:00", Name: "network-0-0", Membership: 4, IP: "10.255.255.253", Comment: "Switch for Cabinet 0"},
		{MAC: "00:50:8b:a5:4d:b1", Name: "nfs-0-0", Membership: 7, IP: "10.255.255.249", Comment: "NFS Server in Cabinet 0"},
		{MAC: "00:50:8b:e0:3a:a7", Name: "compute-0-0", Membership: 2, IP: "10.255.255.245", Comment: "Compute node"},
		{MAC: "00:50:8b:e0:44:5e", Name: "compute-0-1", Membership: 2, Rank: 1, IP: "10.255.255.244", Comment: "Compute node"},
		{MAC: "00:50:8b:e0:40:95", Name: "compute-0-2", Membership: 2, Rank: 2, IP: "10.255.255.243", Comment: "Compute node"},
		{MAC: "00:50:8b:e0:40:93", Name: "compute-0-3", Membership: 2, Rank: 3, IP: "10.255.255.242", Comment: "Compute node"},
		{MAC: "00:50:8b:c5:c7:d3", Name: "web-1-0", Membership: 8, Rack: 1, IP: "10.255.255.246", Comment: "Web Server in Cabinet 1"},
	}
	for _, n := range rows {
		if _, err := clusterdb.InsertNode(db, n); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkTableII_NodesTable regenerates the paper's nodes table from a
// live database, including the SQL round trip.
func BenchmarkTableII_NodesTable(b *testing.B) {
	db := paperNodesDB(b)
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = clusterdb.NodesTableReport(db)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !strings.Contains(out, "web-1-0") {
		b.Fatal("report incomplete")
	}
	b.ReportMetric(float64(strings.Count(out, "\n")-1), "rows")
}

// BenchmarkTableIII_Memberships regenerates the memberships table.
func BenchmarkTableIII_Memberships(b *testing.B) {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = clusterdb.MembershipsTableReport(db)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !strings.Contains(out, "Power Units") {
		b.Fatal("report incomplete")
	}
	b.ReportMetric(float64(strings.Count(out, "\n")-1), "rows")
}

// --- Figure 1: cluster hardware architecture -----------------------------

// BenchmarkFig1_Topology constructs the paper's minimal architecture — a
// frontend with two Ethernet interfaces, N compute nodes on a private
// Ethernet, power units — and pushes one management message across every
// link to prove connectivity.
func BenchmarkFig1_Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simnet.New()
		frontendEth := sim.NewLink("frontend-eth0", 12.5e6)
		publicEth := sim.NewLink("frontend-eth1", 12.5e6)
		const nodes = 16
		done := 0
		for j := 0; j < nodes; j++ {
			nodeEth := sim.NewLink(fmt.Sprintf("compute-%d-eth0", j), 12.5e6)
			sim.StartFlow("mgmt", 1500, []*simnet.Link{frontendEth, nodeEth}, 0, func() { done++ })
		}
		sim.StartFlow("public", 1500, []*simnet.Link{publicEth}, 0, func() { done++ })
		sim.Run()
		if done != nodes+1 {
			b.Fatalf("connectivity: %d/%d", done, nodes+1)
		}
	}
}

// --- Figure 2: the XML node file -----------------------------------------

// figure2XML is the paper's Figure 2 node file.
const figure2XML = `<?xml version="1.0" standalone="no"?>
<KICKSTART>
        <DESCRIPTION>Setup the DHCP server for the cluster</DESCRIPTION>
        <PACKAGE>dhcp</PACKAGE>
        <POST>
                awk '
                        /^DHCPD_INTERFACES/ {
                                printf("DHCPD_INTERFACES=\"eth0\"\n");
                                next;
                        }
                        {
                                print $0;
                        } ' /etc/sysconfig/dhcpd &gt; /tmp/dhcpd
                mv /tmp/dhcpd /etc/sysconfig/dhcpd
        </POST>
</KICKSTART>`

// BenchmarkFig2_ParseNodeFile parses the paper's DHCP node file.
func BenchmarkFig2_ParseNodeFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nf, err := kickstart.ParseNode("dhcp-server", strings.NewReader(figure2XML))
		if err != nil {
			b.Fatal(err)
		}
		if nf.Packages[0].Name != "dhcp" {
			b.Fatal("parse lost the package")
		}
	}
}

// --- Figure 3: the XML graph file ----------------------------------------

const figure3XML = `<?xml version="1.0" standalone="no"?>
<graph>
	<description>Default Rocks graph excerpt</description>
	<edge from="compute" to="mpi"/>
	<edge from="frontend" to="mpi"/>
	<edge from="mpi" to="c-development"/>
	<edge from="compute" to="myrinet" arch="i386,athlon"/>
</graph>`

// BenchmarkFig3_ParseGraph parses a Figure 3-style graph file.
func BenchmarkFig3_ParseGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := kickstart.ParseGraph("default", strings.NewReader(figure3XML))
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Edges) != 4 {
			b.Fatal("parse lost edges")
		}
	}
}

// --- Figure 4: graph traversal and visualization -------------------------

// BenchmarkFig4_TraverseGraph traverses the full default graph for a
// compute appliance and renders the DOT visualization.
func BenchmarkFig4_TraverseGraph(b *testing.B) {
	fw := kickstart.DefaultFramework()
	attrs := kickstart.DefaultAttrs("http://10.1.1.1/install/dist", "10.1.1.1")
	var pkgs int
	for i := 0; i < b.N; i++ {
		p, err := fw.Generate(kickstart.Request{Appliance: "compute", Arch: "i386",
			NodeName: "compute-0-0", Attrs: attrs})
		if err != nil {
			b.Fatal(err)
		}
		pkgs = len(p.Packages)
		if dot := fw.DOT(); !strings.Contains(dot, "digraph") {
			b.Fatal("bad dot")
		}
	}
	b.ReportMetric(float64(pkgs), "packages")
}

// --- Figure 5: building a distribution -----------------------------------

// BenchmarkFig5_BuildDist runs the full rocks-dist merge: Red Hat base +
// updates + local Rocks packages.
func BenchmarkFig5_BuildDist(b *testing.B) {
	base := dist.SyntheticRedHat()
	updates := dist.GenerateUpdates(base, 124, 1)
	local := dist.LocalRocksPackages()
	fw := kickstart.DefaultFramework()
	b.ResetTimer()
	var d *dist.Distribution
	for i := 0; i < b.N; i++ {
		d = dist.Build("rocks", fw,
			dist.Source{Name: "redhat", Repo: base},
			dist.Source{Name: "updates", Repo: updates},
			dist.Source{Name: "rocks-local", Repo: local})
	}
	b.ReportMetric(float64(d.Report.Included), "packages")
	b.ReportMetric(float64(len(d.Report.Superseded)), "superseded")
}

// --- Figure 6: hierarchical distributions --------------------------------

// BenchmarkFig6_HierarchicalDist derives a campus and a department
// distribution from the NPACI master; the metrics show the derived tree is
// lightweight (§6.2.3: ~25 MB of links, built in under a minute — here,
// microseconds, because links are references).
func BenchmarkFig6_HierarchicalDist(b *testing.B) {
	npaci := dist.Build("npaci", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: dist.SyntheticRedHat()},
		dist.Source{Name: "rocks-local", Repo: dist.LocalRocksPackages()})
	campusLocal := rpm.NewRepository("campus-rpms")
	campusLocal.Add(rpm.New("licensed-fortran", rpm.Version{Version: "4.0", Release: "2"}, rpm.ArchI386))
	b.ResetTimer()
	var child *dist.Distribution
	for i := 0; i < b.N; i++ {
		child = dist.BuildChild("campus", npaci, nil,
			dist.Source{Name: "campus-rpms", Repo: campusLocal})
	}
	b.ReportMetric(float64(child.Report.Linked), "linked")
	b.ReportMetric(float64(child.Report.Copied), "copied")
	b.ReportMetric(float64(child.Report.CopiedBytes), "copied-bytes")
}

// --- Figure 7: shoot-node and eKV ----------------------------------------

// BenchmarkFig7_EKVScreen measures a full live reinstallation watched over
// eKV: shoot-node, attach to the telnet-compatible port, stream the Red Hat
// install screen, wait for the node to rejoin the cluster.
func BenchmarkFig7_EKVScreen(b *testing.B) {
	c, err := core.New(core.Config{Name: "bench", DHCPRetry: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	nodes, err := c.IntegrateNodes(
		[]hardware.Profile{hardware.PIIICompute(c.MACs(), 733)},
		clusterdb.MembershipCompute, 0, time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	n := nodes[0]
	b.ResetTimer()
	var screen string
	for i := 0; i < b.N; i++ {
		client, err := c.ShootNodeWatch("compute-0-0", time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if !client.WaitFor("installation complete", time.Minute) {
			b.Fatalf("install never completed: %q", client.Screen())
		}
		screen = client.Screen()
		client.Close()
		if !core.WaitState(n, node.StateUp, time.Minute) {
			b.Fatal("node did not come back up")
		}
	}
	b.StopTimer()
	if !strings.Contains(screen, "Package Installation") {
		b.Fatal("eKV screen incomplete")
	}
	b.ReportMetric(float64(len(screen)), "screen-bytes")
	b.ReportMetric(float64(n.Installs()), "installs")
}

// --- §6.3 micro-benchmark: serial RPM download ---------------------------

// BenchmarkMicro_SerialDownload reproduces "by running a micro-benchmark
// that consisted of serially downloading all the RPMs a compute node
// downloads during its reinstallation, we found the web server sourced
// 7-8 MB/s."
func BenchmarkMicro_SerialDownload(b *testing.B) {
	var got float64
	for i := 0; i < b.N; i++ {
		got = experiments.SerialDownloadMBps(experiments.DefaultParams(1))
	}
	b.ReportMetric(got, "MB/s")
}

// --- Ablation: Gigabit Ethernet server uplink (§6.3) ---------------------

// BenchmarkAblation_GigabitServer upgrades the server to Gigabit and
// reports how many concurrent full-speed reinstallations each uplink
// supports (paper: GigE buys 7.0-9.5×).
func BenchmarkAblation_GigabitServer(b *testing.B) {
	var feN, geN int
	for i := 0; i < b.N; i++ {
		fe := experiments.DefaultParams(1)
		fe.ServerMBps = 7.0
		feN = experiments.MaxFullSpeedReinstalls(fe, 0.02, 16)
		ge := fe
		ge.ServerMBps = 7.0 * 8.5
		geN = experiments.MaxFullSpeedReinstalls(ge, 0.02, 80)
	}
	b.ReportMetric(float64(feN), "fast-ethernet")
	b.ReportMetric(float64(geN), "gigabit")
	b.ReportMetric(float64(geN)/float64(feN), "ratio")
}

// --- Ablation: replicated installation servers (§6.3) --------------------

// BenchmarkAblation_ReplicatedServers reinstalls 32 nodes against 1, 2, and
// 4 load-balanced servers (paper: "By deploying N web servers, one can
// support N times the number of concurrent full-speed reinstallations").
func BenchmarkAblation_ReplicatedServers(b *testing.B) {
	for _, servers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			var r experiments.ReinstallResult
			for i := 0; i < b.N; i++ {
				p := experiments.DefaultParams(32)
				p.Servers = servers
				r = experiments.RunReinstall(p)
			}
			b.ReportMetric(r.TotalMinutes(), "model-min")
		})
	}
}

// --- Ablation: Myrinet driver source rebuild (§6.3) ----------------------

// BenchmarkAblation_MyrinetRebuild compares reinstallation with and without
// the GM source rebuild (paper: "adds only a 20-30% time penalty").
func BenchmarkAblation_MyrinetRebuild(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = experiments.RunReinstall(experiments.DefaultParams(1)).TotalSecs
		p := experiments.DefaultParams(1)
		p.WithMyrinet = false
		without = experiments.RunReinstall(p).TotalSecs
	}
	b.ReportMetric(with/60, "with-min")
	b.ReportMetric(without/60, "without-min")
	b.ReportMetric((with-without)/without*100, "penalty-pct")
}

// --- §6.2.1: update tracking ----------------------------------------------

// BenchmarkUpdateTracking replays Red Hat 6.2's measured year of updates —
// 124 updated packages, one every three days — through rocks-dist and
// reports how many stale packages survive (must be zero).
func BenchmarkUpdateTracking(b *testing.B) {
	base := dist.SyntheticRedHat()
	updates := dist.GenerateUpdates(base, 124, 1)
	fw := kickstart.DefaultFramework()
	b.ResetTimer()
	var stale, superseded int
	for i := 0; i < b.N; i++ {
		d := dist.Build("updated", fw,
			dist.Source{Name: "base", Repo: base},
			dist.Source{Name: "updates", Repo: updates})
		superseded = len(d.Report.Superseded)
		stale = 0
		for _, up := range updates.All() {
			cur := d.Repo.Newest(up.Name, up.Arch)
			if cur == nil || rpm.Compare(cur.Version, up.Version) < 0 {
				stale++
			}
		}
	}
	if stale != 0 {
		b.Fatalf("%d stale packages after update pass", stale)
	}
	b.ReportMetric(float64(superseded), "superseded")
	b.ReportMetric(365.0/124, "days-per-update")
}

// --- Ablation: sequential integration vs concurrent reinstall (§5/§6.4) --

// BenchmarkAblation_SequentialIntegration contrasts first-time integration
// (serial, one node at a time through insert-ethers) with concurrent
// reinstallation of the same 16 nodes — the asymmetry that makes
// reinstallation viable as the everyday management primitive.
func BenchmarkAblation_SequentialIntegration(b *testing.B) {
	var seq, conc experiments.ReinstallResult
	for i := 0; i < b.N; i++ {
		p := experiments.DefaultParams(16)
		seq = experiments.SequentialIntegration(p)
		conc = experiments.RunReinstall(p)
	}
	b.ReportMetric(seq.TotalMinutes(), "integrate-min")
	b.ReportMetric(conc.TotalMinutes(), "reinstall-min")
}

// --- Ablation: demand model (smoothed pipeline vs lockstep bursts) -------

// BenchmarkAblation_DemandModel quantifies the modeling choice documented
// in EXPERIMENTS.md: the paper's smoothed ~1 MB/s per-node demand versus
// naive lockstep wire-speed bursts, at 8 concurrent nodes.
func BenchmarkAblation_DemandModel(b *testing.B) {
	var smooth, bursty experiments.ReinstallResult
	for i := 0; i < b.N; i++ {
		smooth = experiments.RunReinstall(experiments.DefaultParams(8))
		p := experiments.DefaultParams(8)
		p.Bursty = true
		bursty = experiments.RunReinstall(p)
	}
	b.ReportMetric(smooth.TotalMinutes(), "smooth-min")
	b.ReportMetric(bursty.TotalMinutes(), "bursty-min")
}

// --- Mass-reinstall load: the kickstart CGI under a 256-node storm -------

// benchmarkKickstartStorm drives the frontend's kickstart.cgi with 256
// concurrent clients cycling through 64 registered nodes — the §6.3 "every
// node reinstalls at once" shape — and reports throughput and p99 latency.
func benchmarkKickstartStorm(b *testing.B, disableCache bool) {
	c, err := core.New(core.Config{
		Name:                "storm",
		DHCPRetry:           time.Millisecond,
		DisableEKV:          true,
		DisableProfileCache: disableCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const nodes = 64
	ips := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		ips[i] = fmt.Sprintf("10.255.249.%d", i)
		if _, err := clusterdb.InsertNode(c.DB, clusterdb.Node{
			MAC: fmt.Sprintf("02:00:00:00:02:%02x", i), Name: fmt.Sprintf("compute-8-%d", i),
			Membership: clusterdb.MembershipCompute, Rack: 8, Rank: i, IP: ips[i],
		}); err != nil {
			b.Fatal(err)
		}
	}

	// Dispatch straight into the frontend's mux: the benchmark measures the
	// CGI's serving cost (lookup, generation, render), not loopback TCP.
	handler := c.Handler()
	const concurrency = 256
	durations := make([]time.Duration, b.N)
	var next atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				req, _ := http.NewRequest("GET", "/install/kickstart.cgi", nil)
				req.Header.Set(installer.ClientIPHeader, ips[i%nodes])
				rec := httptest.NewRecorder()
				t0 := time.Now()
				handler.ServeHTTP(rec, req)
				durations[i] = time.Since(t0)
				if rec.Code != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d of %d requests failed", n, b.N)
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "profiles/s")
	b.ReportMetric(float64(durations[b.N*99/100].Microseconds())/1000, "p99-ms")
}

// BenchmarkMassReinstall_KickstartCGI measures the end-to-end CGI —
// node lookup, profile generation, render — with the memoized profile
// cache on and off. The acceptance bar for this PR is cached ≥ 5× uncached
// at 256 concurrent clients.
func BenchmarkMassReinstall_KickstartCGI(b *testing.B) {
	b.Run("cache=on", func(b *testing.B) { benchmarkKickstartStorm(b, false) })
	b.Run("cache=off", func(b *testing.B) { benchmarkKickstartStorm(b, true) })
}

// BenchmarkProfileGeneration isolates the kickstart layer: a full graph
// traversal plus substitution per profile (uncached) versus one traversal
// amortized over every node of an appliance class (cached).
func BenchmarkProfileGeneration(b *testing.B) {
	fw := kickstart.DefaultFramework()
	attrs := kickstart.DefaultAttrs("http://10.1.1.1/install/dist", "10.1.1.1")
	req := kickstart.Request{Appliance: "compute", Arch: "i386", NodeName: "compute-0-0",
		Attrs: attrs, NodeAttrs: map[string]string{"Kickstart_PublicHostname": "compute-0-0"}}
	b.Run("uncached", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := fw.Generate(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("cached", func(b *testing.B) {
		pc := kickstart.NewProfileCache(fw)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := pc.Generate(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkMirrorWorkers measures the parallel rocks-dist mirror pass at 1
// and 8 workers against a parent with 2 ms of per-request latency — the
// campus-to-department distance of Figure 6, where the worker pool's job is
// to keep round trips in flight rather than serializing on them.
func BenchmarkMirrorWorkers(b *testing.B) {
	parent := dist.Build("npaci", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: dist.SyntheticRedHat()})
	inner := dist.Handler(parent)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				repo, err := dist.MirrorWith(srv.URL, "bench", dist.MirrorOptions{
					Client: srv.Client(), Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				n = repo.Len()
			}
			b.ReportMetric(float64(n), "packages")
		})
	}
}

// BenchmarkMirrorDelta compares a full replication pass against a delta
// pass over an unchanged parent and a 20-package update: the delta pays
// only for changed digests, so an unchanged re-mirror transfers zero
// package bodies regardless of distribution size.
func BenchmarkMirrorDelta(b *testing.B) {
	base := dist.SyntheticRedHat()
	parent := dist.Build("npaci", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: base})
	inner := dist.Handler(parent)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond) // per-request wire latency, as in BenchmarkMirrorWorkers
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	baseline, _, err := dist.MirrorReportWith(srv.URL, "baseline",
		dist.MirrorOptions{Client: srv.Client()})
	if err != nil {
		b.Fatal(err)
	}
	updated := dist.Build("npaci", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat", Repo: base},
		dist.Source{Name: "updates", Repo: dist.GenerateUpdates(base, 20, 5)})
	updatedInner := dist.Handler(updated)
	updSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		updatedInner.ServeHTTP(w, r)
	}))
	defer updSrv.Close()

	cases := []struct {
		name     string
		url      string
		client   *http.Client
		baseline *rpm.Repository
	}{
		{"full", srv.URL, srv.Client(), nil},
		{"delta-unchanged", srv.URL, srv.Client(), baseline},
		{"delta-20-updates", updSrv.URL, updSrv.Client(), baseline},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var rep dist.MirrorReport
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = dist.MirrorReportWith(tc.url, "bench",
					dist.MirrorOptions{Client: tc.client, Baseline: tc.baseline})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Fetched), "fetched")
			b.ReportMetric(float64(rep.Skipped), "skipped")
			b.ReportMetric(float64(rep.FetchedBytes), "bytes")
		})
	}
}

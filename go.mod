module rocks

go 1.22

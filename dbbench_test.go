// Database fast-path benchmarks: the discovery storm, the kickstart CGI's
// point-lookup mix, report regeneration, and the plan cache — each with the
// optimization on and off so BENCH_pr3.json can record the ratio. The
// legacy sub-benchmarks reproduce the original tools' behavior (full table
// scans, re-parse per statement, wholesale DHCP rebuild plus a full
// dbreport pass after every discovered node).
package rocks_test

import (
	"fmt"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/dhcp"
	"rocks/internal/insertethers"
	"rocks/internal/syslogd"
)

// populateBenchNodes registers n compute nodes directly in the database.
func populateBenchNodes(b *testing.B, db *clusterdb.Database, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if _, err := clusterdb.InsertNode(db, clusterdb.Node{
			MAC:        fmt.Sprintf("02:10:00:00:%02x:%02x", i/256, i%256),
			Name:       fmt.Sprintf("compute-9-%d", i),
			Membership: clusterdb.MembershipCompute,
			Rack:       9, Rank: i,
			IP: fmt.Sprintf("10.254.%d.%d", i/254, 1+i%254),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkDiscoveryStorm integrates stormNodes machines through
// insert-ethers. Fast path: indexed lookups, cached plans, per-node DHCP
// binding deltas, one coalesced report pass at the end. Legacy path: scans,
// re-parsing, a wholesale DHCP rebuild and a full dbreport regeneration
// after every single discovery — the O(N) work N times the paper's tools
// actually did.
func benchmarkDiscoveryStorm(b *testing.B, fast bool, durable, fsync bool) {
	const stormNodes = 1000
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		cfg := core.Config{Name: "storm", DHCPRetry: time.Millisecond, DisableEKV: true}
		if durable {
			cfg.DBDir = b.TempDir() // fresh per iteration: a recovered dir would skip every MAC
			cfg.DBFsync = fsync
		}
		c, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c.DB.SetIndexRouting(fast)
		c.DB.SetPlanCache(fast)
		var onInsert func(clusterdb.Node)
		if !fast {
			onInsert = func(clusterdb.Node) { c.WriteReports() }
		} else {
			onInsert = func(clusterdb.Node) { c.ScheduleReports() }
		}
		ie, err := insertethers.Start(insertethers.Config{
			DB: c.DB, Syslog: c.Syslog, DHCP: c.DHCPd,
			NextServer: c.BaseURL(),
			Membership: clusterdb.MembershipCompute, Rack: 9,
			FullSync: !fast,
			OnInsert: onInsert,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		for i := 0; i < stormNodes; i++ {
			if err := ie.Discover(fmt.Sprintf("02:20:00:00:%02x:%02x", i/256, i%256)); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.FlushReports(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		b.StopTimer()
		ie.Stop()
		c.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(stormNodes*b.N)/elapsed.Seconds(), "nodes/s")
}

// BenchmarkDBDiscoveryStorm is the PR 3 headline: integrating a 1000-node
// cabinet burst. Acceptance asks fast ≥ 10× legacy. The durable variants
// price the write-ahead log: every insert appends a checksummed record
// (and under fsync flushes it) before the statement applies, plus a
// snapshot rotation every 1024 statements.
func BenchmarkDBDiscoveryStorm(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchmarkDiscoveryStorm(b, true, false, false) })
	b.Run("legacy", func(b *testing.B) { benchmarkDiscoveryStorm(b, false, false, false) })
	b.Run("fast-durable", func(b *testing.B) { benchmarkDiscoveryStorm(b, true, true, false) })
	b.Run("fast-durable-fsync", func(b *testing.B) { benchmarkDiscoveryStorm(b, true, true, true) })
}

// benchmarkPointLookupMix is the kickstart CGI's database footprint: every
// profile request resolves the client IP to a node and its membership to an
// appliance. With 1000 registered nodes the scan path walks the table per
// request; the hash indexes answer in O(1).
func benchmarkPointLookupMix(b *testing.B, indexed bool) {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	populateBenchNodes(b, db, 1000)
	db.SetIndexRouting(indexed)
	defer db.SetIndexRouting(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 1000
		n, ok, err := clusterdb.NodeByIP(db, fmt.Sprintf("10.254.%d.%d", k/254, 1+k%254))
		if err != nil || !ok {
			b.Fatalf("lookup %d: %v %v", k, ok, err)
		}
		if _, _, _, err := clusterdb.ApplianceForMembership(db, n.Membership); err != nil {
			b.Fatal(err)
		}
		if i%8 == 0 { // insert-ethers' replace path resolves by MAC
			if _, _, err := clusterdb.NodeByMAC(db, n.MAC); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkDBPointLookupMix compares the CGI lookup mix indexed vs scan.
// Acceptance asks indexed ≥ 10× scan at 1000 nodes.
func BenchmarkDBPointLookupMix(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchmarkPointLookupMix(b, true) })
	b.Run("scan", func(b *testing.B) { benchmarkPointLookupMix(b, false) })
}

// benchmarkLookupUnderStorm runs the CGI point-lookup mix against 1000
// registered nodes while an insert-ethers discovery storm drives the write
// path from another goroutine, paced at one discovery per millisecond —
// the fast path's measured cabinet-integration rate (BENCH_pr3: ~1700
// nodes/s), i.e. a full 1000-node storm arriving in about a second. The
// write-ahead log's lock split keeps the log append and fsync outside the
// table lock, so readers only ever wait for the in-memory apply — the CGI
// must not queue behind insert-ethers' disk I/O.
func benchmarkLookupUnderStorm(b *testing.B, storm bool, dir string, fsync bool) {
	var db *clusterdb.Database
	if dir != "" {
		var err error
		db, _, err = clusterdb.Open(dir, clusterdb.Options{Fsync: fsync})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
	} else {
		db = clusterdb.New()
	}
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	populateBenchNodes(b, db, 1000)

	stop := make(chan struct{})
	done := make(chan struct{})
	if storm {
		log := syslogd.New()
		ie, err := insertethers.Start(insertethers.Config{
			DB: db, Syslog: log, DHCP: dhcp.NewServer("frontend-0", log),
			NextServer: "http://10.1.1.1",
			Membership: clusterdb.MembershipCompute, Rack: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer ie.Stop()
		go func() {
			defer close(done)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				mac := fmt.Sprintf("02:40:%02x:%02x:%02x:%02x", i>>24, (i>>16)&255, (i>>8)&255, i&255)
				if err := ie.Discover(mac); err != nil {
					b.Errorf("storm discover %d: %v", i, err)
					return
				}
			}
		}()
	} else {
		close(done)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 1000
		n, ok, err := clusterdb.NodeByIP(db, fmt.Sprintf("10.254.%d.%d", k/254, 1+k%254))
		if err != nil || !ok {
			b.Fatalf("lookup %d: %v %v", k, ok, err)
		}
		if _, _, _, err := clusterdb.ApplianceForMembership(db, n.Membership); err != nil {
			b.Fatal(err)
		}
		if i%8 == 0 {
			if _, _, err := clusterdb.NodeByMAC(db, n.MAC); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkDBLookupUnderStorm is the durable-database acceptance check:
// point-lookup throughput under a concurrent discovery storm must stay
// within 2x of idle, including when every storm insert fsyncs a WAL record.
func BenchmarkDBLookupUnderStorm(b *testing.B) {
	b.Run("idle", func(b *testing.B) { benchmarkLookupUnderStorm(b, false, "", false) })
	b.Run("storm", func(b *testing.B) { benchmarkLookupUnderStorm(b, true, "", false) })
	b.Run("storm-durable", func(b *testing.B) { benchmarkLookupUnderStorm(b, true, b.TempDir(), false) })
	b.Run("storm-durable-fsync", func(b *testing.B) { benchmarkLookupUnderStorm(b, true, b.TempDir(), true) })
}

// BenchmarkDBReportGeneration measures one full dbreport pass — hosts,
// dhcpd.conf, PBS nodes — over a 1000-node database: the unit of work the
// coalescer saves on every skipped regeneration.
func BenchmarkDBReportGeneration(b *testing.B) {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	populateBenchNodes(b, db, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clusterdb.HostsReport(db); err != nil {
			b.Fatal(err)
		}
		if _, err := clusterdb.DHCPReport(db); err != nil {
			b.Fatal(err)
		}
		if _, err := clusterdb.PBSNodesReport(db); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "regens/s")
}

// BenchmarkDBPlanCache isolates statement preparation: the same SELECT
// executed with the parse memoized versus re-lexed and re-parsed per call.
// The statement is a site-attribute point lookup — the shape the kickstart
// generator runs dozens of times per profile — where preparation, not
// execution, is the cost.
func BenchmarkDBPlanCache(b *testing.B) {
	const q = `SELECT value FROM site WHERE name = 'KickstartFrom'`
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "reparse"
		}
		b.Run(name, func(b *testing.B) {
			db := clusterdb.New()
			if err := clusterdb.InitSchema(db); err != nil {
				b.Fatal(err)
			}
			db.SetPlanCache(cached)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

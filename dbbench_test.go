// Database fast-path benchmarks: the discovery storm, the kickstart CGI's
// point-lookup mix, report regeneration, and the plan cache — each with the
// optimization on and off so BENCH_pr3.json can record the ratio. The
// legacy sub-benchmarks reproduce the original tools' behavior (full table
// scans, re-parse per statement, wholesale DHCP rebuild plus a full
// dbreport pass after every discovered node).
package rocks_test

import (
	"fmt"
	"testing"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/insertethers"
)

// populateBenchNodes registers n compute nodes directly in the database.
func populateBenchNodes(b *testing.B, db *clusterdb.Database, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		if _, err := clusterdb.InsertNode(db, clusterdb.Node{
			MAC:        fmt.Sprintf("02:10:00:00:%02x:%02x", i/256, i%256),
			Name:       fmt.Sprintf("compute-9-%d", i),
			Membership: clusterdb.MembershipCompute,
			Rack:       9, Rank: i,
			IP: fmt.Sprintf("10.254.%d.%d", i/254, 1+i%254),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkDiscoveryStorm integrates stormNodes machines through
// insert-ethers. Fast path: indexed lookups, cached plans, per-node DHCP
// binding deltas, one coalesced report pass at the end. Legacy path: scans,
// re-parsing, a wholesale DHCP rebuild and a full dbreport regeneration
// after every single discovery — the O(N) work N times the paper's tools
// actually did.
func benchmarkDiscoveryStorm(b *testing.B, fast bool) {
	const stormNodes = 1000
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		c, err := core.New(core.Config{Name: "storm", DHCPRetry: time.Millisecond, DisableEKV: true})
		if err != nil {
			b.Fatal(err)
		}
		c.DB.SetIndexRouting(fast)
		c.DB.SetPlanCache(fast)
		var onInsert func(clusterdb.Node)
		if !fast {
			onInsert = func(clusterdb.Node) { c.WriteReports() }
		} else {
			onInsert = func(clusterdb.Node) { c.ScheduleReports() }
		}
		ie, err := insertethers.Start(insertethers.Config{
			DB: c.DB, Syslog: c.Syslog, DHCP: c.DHCPd,
			NextServer: c.BaseURL(),
			Membership: clusterdb.MembershipCompute, Rack: 9,
			FullSync: !fast,
			OnInsert: onInsert,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		for i := 0; i < stormNodes; i++ {
			if err := ie.Discover(fmt.Sprintf("02:20:00:00:%02x:%02x", i/256, i%256)); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.FlushReports(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		b.StopTimer()
		ie.Stop()
		c.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(stormNodes*b.N)/elapsed.Seconds(), "nodes/s")
}

// BenchmarkDBDiscoveryStorm is the PR's headline: integrating a 1000-node
// cabinet burst. Acceptance asks fast ≥ 10× legacy.
func BenchmarkDBDiscoveryStorm(b *testing.B) {
	b.Run("fast", func(b *testing.B) { benchmarkDiscoveryStorm(b, true) })
	b.Run("legacy", func(b *testing.B) { benchmarkDiscoveryStorm(b, false) })
}

// benchmarkPointLookupMix is the kickstart CGI's database footprint: every
// profile request resolves the client IP to a node and its membership to an
// appliance. With 1000 registered nodes the scan path walks the table per
// request; the hash indexes answer in O(1).
func benchmarkPointLookupMix(b *testing.B, indexed bool) {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	populateBenchNodes(b, db, 1000)
	db.SetIndexRouting(indexed)
	defer db.SetIndexRouting(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 1000
		n, ok, err := clusterdb.NodeByIP(db, fmt.Sprintf("10.254.%d.%d", k/254, 1+k%254))
		if err != nil || !ok {
			b.Fatalf("lookup %d: %v %v", k, ok, err)
		}
		if _, _, _, err := clusterdb.ApplianceForMembership(db, n.Membership); err != nil {
			b.Fatal(err)
		}
		if i%8 == 0 { // insert-ethers' replace path resolves by MAC
			if _, _, err := clusterdb.NodeByMAC(db, n.MAC); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkDBPointLookupMix compares the CGI lookup mix indexed vs scan.
// Acceptance asks indexed ≥ 10× scan at 1000 nodes.
func BenchmarkDBPointLookupMix(b *testing.B) {
	b.Run("indexed", func(b *testing.B) { benchmarkPointLookupMix(b, true) })
	b.Run("scan", func(b *testing.B) { benchmarkPointLookupMix(b, false) })
}

// BenchmarkDBReportGeneration measures one full dbreport pass — hosts,
// dhcpd.conf, PBS nodes — over a 1000-node database: the unit of work the
// coalescer saves on every skipped regeneration.
func BenchmarkDBReportGeneration(b *testing.B) {
	db := clusterdb.New()
	if err := clusterdb.InitSchema(db); err != nil {
		b.Fatal(err)
	}
	populateBenchNodes(b, db, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clusterdb.HostsReport(db); err != nil {
			b.Fatal(err)
		}
		if _, err := clusterdb.DHCPReport(db); err != nil {
			b.Fatal(err)
		}
		if _, err := clusterdb.PBSNodesReport(db); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "regens/s")
}

// BenchmarkDBPlanCache isolates statement preparation: the same SELECT
// executed with the parse memoized versus re-lexed and re-parsed per call.
// The statement is a site-attribute point lookup — the shape the kickstart
// generator runs dozens of times per profile — where preparation, not
// execution, is the cost.
func BenchmarkDBPlanCache(b *testing.B) {
	const q = `SELECT value FROM site WHERE name = 'KickstartFrom'`
	for _, cached := range []bool{true, false} {
		name := "cached"
		if !cached {
			name = "reparse"
		}
		b.Run(name, func(b *testing.B) {
			db := clusterdb.New()
			if err := clusterdb.InitSchema(db); err != nil {
				b.Fatal(err)
			}
			db.SetPlanCache(cached)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

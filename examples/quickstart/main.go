// Quickstart: bring up a Rocks cluster from nothing in about a page of
// code — the paper's "make clusters easy" goal as an API.
//
//	go run ./examples/quickstart
//
// It builds a frontend (database, kickstart CGI, distribution server, DHCP,
// NIS, NFS, PBS), integrates four compute nodes through insert-ethers, and
// then exercises the two everyday operations: an SQL query over the cluster
// database and a cluster-wide command.
package main

import (
	"fmt"
	"log"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/hardware"
)

func main() {
	// 1. Install the frontend. This runs the full kickstart pipeline
	//    against the built-in (synthetic) Red Hat 7.2 distribution.
	cluster, err := core.New(core.Config{Name: "Quickstart", DHCPRetry: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("frontend installed: %s (%d packages)\n",
		cluster.Frontend.Name(), cluster.Frontend.PackageDB().Len())
	fmt.Print(cluster.Dist.Report.Summary())

	// 2. Integrate compute nodes: power them on while insert-ethers
	//    watches syslog for their DHCP requests (§6.4). Each node
	//    kickstarts itself over HTTP and joins PBS when it comes up.
	profiles := make([]hardware.Profile, 4)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(cluster.MACs(), 733)
	}
	start := time.Now()
	if _, err := cluster.IntegrateNodes(profiles, clusterdb.MembershipCompute, 0, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated 4 compute nodes in %v (wall clock; the paper's "+
		"simulated nodes take 5-10 min each of modeled time)\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(cluster.StatusTable())

	// 3. The cluster database is plain SQL (§6.4, Table II).
	res, err := cluster.DB.Query(`SELECT name, ip FROM nodes ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes table:")
	fmt.Println(res.Format())

	// 4. Run a command everywhere a query selects.
	results, err := cluster.Fork("", "rpm -q kernel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel versions across the cluster:")
	for _, r := range results {
		fmt.Printf("  %s: %s", r.Host, r.Output)
	}
}

// Campus hierarchy: the paper's Figure 6 object-oriented distribution
// model. NPACI publishes a distribution; a university campus mirrors it
// over HTTP and layers licensed software on top; a department derives from
// the campus and adds its own packages plus a graph customization. A
// department cluster then installs nodes carrying software from all three
// levels — while the derived trees stay lightweight because inherited
// packages are linked, not copied (§6.2.3).
//
//	go run ./examples/campus-hierarchy
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

func main() {
	// Level 0: NPACI's master distribution, served over HTTP.
	npaci := dist.Build("npaci-rocks", kickstart.DefaultFramework(),
		dist.Source{Name: "redhat-7.2", Repo: dist.SyntheticRedHat()},
		dist.Source{Name: "rocks-local", Repo: dist.LocalRocksPackages()})
	npaciSrv := httptest.NewServer(dist.Handler(npaci))
	defer npaciSrv.Close()
	fmt.Printf("NPACI serves %d packages at %s\n", npaci.Repo.Len(), npaciSrv.URL)

	// Level 1: the campus replicates NPACI with wget-over-HTTP and adds a
	// licensed compiler.
	mirror, err := dist.Mirror(http.DefaultClient, npaciSrv.URL, "npaci-mirror")
	if err != nil {
		log.Fatal(err)
	}
	campusLocal := rpm.NewRepository("campus-rpms")
	campusLocal.Add(rpm.New("licensed-fortran", rpm.Version{Version: "4.0", Release: "2"}, rpm.ArchI386))
	parent := dist.Build("npaci-rocks", kickstart.DefaultFramework(),
		dist.Source{Name: "npaci-mirror", Repo: mirror})
	campus := dist.BuildChild("campus", parent, nil,
		dist.Source{Name: "campus-rpms", Repo: campusLocal})
	fmt.Printf("campus: %s", campus.Report.Summary())

	// Level 2: the department extends the campus framework — a new node
	// file and a graph edge pull its packages onto every compute node.
	deptLocal := rpm.NewRepository("dept-rpms")
	deptLocal.Add(rpm.New("dept-visualizer", rpm.Version{Version: "1.3", Release: "1"}, rpm.ArchI386))
	dept := dist.BuildChild("department", campus, nil,
		dist.Source{Name: "dept-rpms", Repo: deptLocal})
	dept.Framework.AddNode(&kickstart.NodeFile{
		Name:        "dept-tools",
		Description: "Department-wide additions",
		Packages: []kickstart.PackageRef{
			{Name: "dept-visualizer"},
			{Name: "licensed-fortran"},
		},
	})
	dept.Framework.Graph.AddEdge("compute", "dept-tools")
	fmt.Printf("department: %s", dept.Report.Summary())
	fmt.Printf("department tree: %d linked, %d copied (derived distributions stay light)\n",
		dept.Report.Linked, dept.Report.Copied)

	// A department cluster installs from the derived distribution.
	cluster, err := core.New(core.Config{
		Name:      "dept-cluster",
		Framework: dept.Framework,
		Sources: []dist.Source{
			{Name: "department", Repo: dept.Repo},
		},
		DHCPRetry: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	nodes, err := cluster.IntegrateNodes(
		[]hardware.Profile{hardware.PIIICompute(cluster.MACs(), 733)},
		clusterdb.MembershipCompute, 0, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	n := nodes[0]
	for _, pkg := range []string{"glibc", "rocks-tools", "licensed-fortran", "dept-visualizer"} {
		m, ok := n.PackageDB().Query(pkg)
		if !ok {
			log.Fatalf("node missing %s", pkg)
		}
		fmt.Printf("  %s has %-28s (from the %s level)\n", n.Name(), m.NVRA(), levelOf(pkg))
	}
}

func levelOf(pkg string) string {
	switch pkg {
	case "licensed-fortran":
		return "campus"
	case "dept-visualizer":
		return "department"
	case "rocks-tools":
		return "NPACI"
	default:
		return "Red Hat"
	}
}

// Reinstall campaign: the paper's §5 upgrade workflow end to end. A
// security update lands; rocks-dist folds it into the distribution; the
// production cluster is upgraded by submitting a "reinstall cluster" job to
// Maui so running applications drain first; afterwards every node is
// provably consistent.
//
//	go run ./examples/reinstall-campaign
package main

import (
	"fmt"
	"log"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/dist"
	"rocks/internal/hardware"
	"rocks/internal/pbs"
	"rocks/internal/rpm"
)

func main() {
	cluster, err := core.New(core.Config{Name: "Production", DHCPRetry: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	profiles := make([]hardware.Profile, 3)
	for i := range profiles {
		profiles[i] = hardware.PIIICompute(cluster.MACs(), 1000)
	}
	nodes, err := cluster.IntegrateNodes(profiles, clusterdb.MembershipCompute, 0, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	before, _ := nodes[0].PackageDB().Query("openssl")
	fmt.Printf("cluster up; openssl on compute nodes: %s\n", before.NVRA())

	// A user's long-running job occupies one node.
	appID := cluster.PBS.Submit(pbs.Job{Name: "md-simulation", NodeCount: 1, Hold: true})
	cluster.PBS.Schedule()
	appJob, _ := cluster.PBS.Job(appID)
	fmt.Printf("running application %q on %v\n", appJob.Name, appJob.Assigned)

	// Security advisory: a new openssl lands in the updates source.
	// Rebuild the distribution; "If Red Hat ships it, so do we" (§6.2.1).
	cur := cluster.Dist.Repo.Newest("openssl", "i386")
	fixed := *cur
	fv := cur.Version
	fv.Release += ".security"
	fixed.Version = fv
	fixed.Summary = "openssl with the advisory fix"
	updates := rpm.NewRepository("updates")
	updates.Add(&fixed)
	rebuilt := dist.Build(cluster.Dist.Name, cluster.Dist.Framework,
		dist.Source{Name: "current", Repo: cluster.Dist.Repo},
		dist.Source{Name: "updates", Repo: updates})
	fmt.Printf("rocks-dist rebuild: %s", rebuilt.Report.Summary())
	// Swap the served repository in place (the frontend serves the new
	// tree; running nodes are untouched until they reinstall).
	*cluster.Dist = *rebuilt

	// Upgrade the production system by queueing reinstalls behind the
	// running application.
	done := make(chan error, 1)
	go func() { done <- cluster.ReinstallCluster(2 * time.Minute) }()
	time.Sleep(100 * time.Millisecond)
	for _, n := range nodes {
		if n.Name() == appJob.Assigned[0] && n.Installs() != 1 {
			log.Fatal("the busy node was reinstalled under a running job!")
		}
	}
	fmt.Println("idle nodes reinstalled; busy node untouched while the app runs")
	cluster.PBS.Finish(appID)
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		for n.State() != "up" {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Every node now runs the fixed package, and the cluster is consistent.
	for _, n := range nodes {
		got, _ := n.PackageDB().Query("openssl")
		fmt.Printf("  %s: %s (%d installs)\n", n.Name(), got.NVRA(), n.Installs())
	}
	ref, divergent, _ := cluster.ConsistencyReport()
	fmt.Printf("consistency: reference %s, %d divergent nodes\n", ref, len(divergent))
}

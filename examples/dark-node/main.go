// Dark node: the §4 management loop. With no dedicated management network,
// an unreachable node is "dark" — the administrator's remedies are, in
// order, shoot-node over Ethernet, a hard power cycle on the network PDU,
// and finally the crash cart. This example breaks a node, watches the
// health monitor flag it, and walks the escalation until the node is back.
//
//	go run ./examples/dark-node
package main

import (
	"fmt"
	"log"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/hardware"
	"rocks/internal/node"
)

func main() {
	cluster, err := core.New(core.Config{Name: "Watchtower", DHCPRetry: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	nodes, err := cluster.IntegrateNodes(
		[]hardware.Profile{
			hardware.PIIICompute(cluster.MACs(), 733),
			hardware.PIIICompute(cluster.MACs(), 733),
		},
		clusterdb.MembershipCompute, 0, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	mon := cluster.NewMonitor(30*time.Millisecond, 0)
	defer mon.Stop()
	mon.Probe()
	fmt.Print(mon.Report())

	// A power supply dies: compute-0-1 vanishes from the network.
	victim := nodes[1]
	victim.PowerOff()
	time.Sleep(40 * time.Millisecond)
	mon.Probe()
	fmt.Println("\nafter the fault:")
	fmt.Print(mon.Report())

	dark := mon.Dark()
	if len(dark) != 1 {
		log.Fatalf("expected one dark node, got %v", dark)
	}
	fmt.Printf("\n%s is dark; shoot-node needs a live OS, so escalate to the PDU\n", dark[0])

	outlet, ok := cluster.PDU.OutletFor(victim.MAC())
	if !ok {
		log.Fatal("victim not wired to the PDU")
	}
	if err := cluster.PDU.HardCycle(outlet); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hard power cycle on outlet %d: the node reinstalls itself\n", outlet)
	for !core.WaitState(victim, node.StateUp, time.Minute) {
		log.Fatal("node did not recover")
	}
	mon.Probe()
	fmt.Println("\nafter recovery:")
	fmt.Print(mon.Report())
	fmt.Printf("\n%s reinstalled %d times; manifest consistent again\n",
		victim.Name(), victim.Installs())
}

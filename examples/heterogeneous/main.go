// Heterogeneous: the paper's Meteor cluster grew to seven node types across
// two CPU architectures, three vendors, and three disk-adapter families
// (§3.1) — and one XML graph drives them all (§6.1). This example
// integrates the full catalog, shows that each node autodetected its own
// drivers and received an architecture-appropriate package set, and prints
// the graph that did it.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/hardware"
)

func main() {
	cluster, err := core.New(core.Config{Name: "Meteor", DHCPRetry: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// The Meteor-style hardware mix. We integrate the compute-capable ones
	// as compute appliances; each probes its own disk and NICs.
	catalog := hardware.Catalog(cluster.MACs())
	var computes []hardware.Profile
	for _, p := range catalog {
		if strings.Contains(p.Model, "compute") {
			computes = append(computes, p)
		}
	}
	nodes, err := cluster.IntegrateNodes(computes, clusterdb.MembershipCompute, 0, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-8s %-6s %-9s %-8s %s\n", "MODEL", "ARCH", "DISK", "MYRINET", "PKGS", "KERNEL")
	for i, n := range nodes {
		hw := computes[i]
		probe, _ := hardware.Detect(hw)
		myri := "-"
		if hw.HasMyrinet() {
			if n.MyrinetOperational() {
				myri = "gm ok"
			} else {
				myri = "BROKEN"
			}
		}
		fmt.Printf("%-22s %-8s %-6s %-9s %-8d %s\n",
			hw.Model, hw.Arch, probe.DiskDevice, myri, n.PackageDB().Len(), n.KernelVersion())
	}

	// Architecture-conditional edges at work: IA-64 nodes must not carry
	// the Myrinet packages (the graph's arch= attribute prunes them).
	for i, n := range nodes {
		if computes[i].Arch == "ia64" {
			if _, ok := n.PackageDB().Query("gm"); ok {
				log.Fatalf("ia64 node %s received the i386-only gm package", n.Name())
			}
			fmt.Printf("\n%s (ia64): %d packages — the graph pruned the Myrinet subtree\n",
				n.Name(), n.PackageDB().Len())
		}
	}

	// One graph describes all of it (Figure 4).
	dot := cluster.Dist.Framework.DOT()
	fmt.Printf("\nkickstart graph: %d node files, %d edges (run `kickstart -dot` for the full Figure 4 rendering)\n",
		len(cluster.Dist.Framework.Nodes), len(cluster.Dist.Framework.Graph.Edges))
	_ = dot
}

// Package rocks is a from-scratch reproduction of "NPACI Rocks: Tools and
// Techniques for Easily Deploying Manageable Linux Clusters" (Papadopoulos,
// Katz, Bruno; CLUSTER 2001).
//
// The system lives under internal/: the kickstart XML graph framework
// (§6.1), the rocks-dist distribution builder (§6.2), the cluster SQL
// database and its report generators (§6.4), insert-ethers discovery, the
// eKV remote installation console and shoot-node (§6.3), and the substrates
// they stand on — an RPM package system, a DHCP/syslog/NIS/NFS/PBS service
// stack, simulated cluster nodes with partitioned disks, and a
// discrete-event network simulator for the paper's timing experiments.
//
// Entry points:
//
//   - internal/core.Cluster — the programmatic API (see examples/)
//   - cmd/cluster-sim — a live simulated cluster plus experiment runner
//   - bench_test.go — one benchmark per table and figure in the paper
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package rocks

// dbreport renders service configuration files from a cluster database
// directory — the §6.4 dbreport run offline, against the durable WAL +
// snapshot store a frontend leaves on disk — and checks that the directory
// recovers.
//
//	dbreport -dir /var/rocks/db recover   # recovery check: exit 1 on corruption
//	dbreport -dir /var/rocks/db hosts     # render /etc/hosts
//	dbreport -dir /var/rocks/db dhcp      # render dhcpd.conf
//	dbreport -dir /var/rocks/db pbs       # render the PBS nodes file
//	dbreport -dir /var/rocks/db nodes     # Table II
//	dbreport -dir /var/rocks/db dump      # full SQL dump
//
// The recover check performs a real recovery pass: it loads the newest
// snapshot, replays the log, drops a torn final record if the crash left
// one, and reports exactly what it found. Run it against an idle directory
// — a live frontend holds the log open for appending.
package main

import (
	"flag"
	"fmt"
	"os"

	"rocks/internal/clusterdb"
)

func main() {
	dir := flag.String("dir", "", "cluster database directory (WAL + snapshots)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dbreport: -dir is required")
		os.Exit(2)
	}
	report := "recover"
	if flag.NArg() > 0 {
		report = flag.Arg(0)
	}

	db, info, err := clusterdb.Open(*dir, clusterdb.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbreport: recovery failed: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	var out string
	switch report {
	case "recover":
		fmt.Printf("recovered %s: %s\n", *dir, info)
		for _, t := range db.TableNames() {
			res, err := db.Query("SELECT count(*) FROM " + t)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dbreport:", err)
				os.Exit(1)
			}
			n, _ := res.Rows[0][0].AsInt()
			fmt.Printf("  %-12s %d rows\n", t, n)
		}
		return
	case "hosts":
		out, err = clusterdb.HostsReport(db)
	case "dhcp":
		out, err = clusterdb.DHCPReport(db)
	case "pbs":
		out, err = clusterdb.PBSNodesReport(db)
	case "nodes":
		out, err = clusterdb.NodesTableReport(db)
	case "memberships":
		out, err = clusterdb.MembershipsTableReport(db)
	case "dump":
		out = db.Dump()
	default:
		fmt.Fprintf(os.Stderr, "dbreport: unknown report %q (want recover|hosts|dhcp|pbs|nodes|memberships|dump)\n", report)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbreport:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// kickstart generates Red Hat-compliant kickstart files from the XML
// node/graph framework (§6.1) — the offline equivalent of the frontend's
// CGI. It reads a profiles directory (nodes/*.xml, graphs/*.xml) layered
// over the built-in Rocks defaults, or the defaults alone.
//
//	kickstart -appliance compute -arch i386 -node compute-0-0
//	kickstart -dir ./site-profiles -appliance frontend
//	kickstart -dot > graph.dot          # Figure 4
//	kickstart -validate                 # check every appliance traverses
package main

import (
	"flag"
	"fmt"
	"os"

	"rocks/internal/kickstart"
)

func main() {
	var (
		dir       = flag.String("dir", "", "profiles directory (nodes/*.xml, graphs/*.xml) layered over the defaults")
		appliance = flag.String("appliance", "compute", "graph root to traverse")
		arch      = flag.String("arch", "i386", "node architecture")
		nodeName  = flag.String("node", "compute-0-0", "node name for the header")
		distURL   = flag.String("url", "http://10.1.1.1/install/dist", "distribution URL for the url directive")
		frontend  = flag.String("frontend", "10.1.1.1", "frontend address for service attributes")
		dot       = flag.Bool("dot", false, "emit the graph in Graphviz dot form instead")
		validate  = flag.Bool("validate", false, "validate the framework and exit")
	)
	flag.Parse()

	fw := kickstart.DefaultFramework()
	if *dir != "" {
		site, err := kickstart.LoadFS(os.DirFS(*dir))
		if err != nil {
			fmt.Fprintln(os.Stderr, "kickstart:", err)
			os.Exit(1)
		}
		// Site files override same-named defaults; site edges extend the
		// default graph (§6.2.3).
		for name, nf := range site.Nodes {
			_ = name
			fw.AddNode(nf)
		}
		fw.Graph.Merge(site.Graph)
	}

	if *validate {
		errs := fw.Validate("i386", "athlon", "ia64")
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		if len(errs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("ok: %d node files, %d edges, appliances %v\n",
			len(fw.Nodes), len(fw.Graph.Edges), fw.Graph.Roots())
		return
	}
	if *dot {
		fmt.Print(fw.DOT())
		return
	}
	profile, err := fw.Generate(kickstart.Request{
		Appliance: *appliance,
		Arch:      *arch,
		NodeName:  *nodeName,
		Attrs:     kickstart.DefaultAttrs(*distURL, *frontend),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kickstart:", err)
		os.Exit(1)
	}
	fmt.Print(profile.Render())
}

// rocksql runs SQL against a running cluster's configuration database —
// the query interface every Rocks tool composes with (§6.4). Point it at a
// cluster-sim frontend:
//
//	rocksql -server http://127.0.0.1:8070 "select * from nodes"
//	rocksql -server http://127.0.0.1:8070 -exec "update nodes set rack = 1 where name = 'compute-0-3'"
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"rocks/internal/clusterdb"
)

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		exec   = flag.Bool("exec", false, "allow data-modification statements")
		dump   = flag.String("dump", "", "query an offline SQL dump file instead of a live frontend")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rocksql [-server URL | -dump FILE] [-exec] \"SQL\"")
		os.Exit(2)
	}
	if *dump != "" {
		queryDump(*dump, flag.Arg(0), *exec)
		return
	}
	params := url.Values{"q": {flag.Arg(0)}}
	if *exec {
		params.Set("exec", "1")
	}
	resp, err := http.Get(strings.TrimSuffix(*server, "/") + "/admin/sql?" + params.Encode())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "rocksql: %s: %s", resp.Status, body)
		os.Exit(1)
	}
	fmt.Print(string(body))
}

// queryDump restores a database dump (see clusterdb.Dump) and runs the
// query against it — post-mortem analysis of a dead frontend's backup.
func queryDump(path, sql string, exec bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	db := clusterdb.New()
	if err := clusterdb.Restore(db, string(data)); err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	var res *clusterdb.Result
	if exec {
		res, err = db.Exec(sql)
	} else {
		res, err = db.Query(sql)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}

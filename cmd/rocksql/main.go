// rocksql runs SQL against a running cluster's configuration database —
// the query interface every Rocks tool composes with (§6.4). Point it at a
// cluster-sim frontend:
//
//	rocksql -server http://127.0.0.1:8070 "select * from nodes"
//	rocksql -server http://127.0.0.1:8070 -exec "update nodes set rack = 1 where name = 'compute-0-3'"
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"

	"rocks/internal/apiclient"
	"rocks/internal/clusterdb"
)

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		exec   = flag.Bool("exec", false, "allow data-modification statements")
		dump   = flag.String("dump", "", "query an offline SQL dump file instead of a live frontend")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rocksql [-server URL | -dump FILE] [-exec] \"SQL\"")
		os.Exit(2)
	}
	if *dump != "" {
		queryDump(*dump, flag.Arg(0), *exec)
		return
	}
	params := url.Values{"q": {flag.Arg(0)}}
	client := apiclient.New(*server)
	var out struct {
		Result string `json:"result"`
	}
	var err error
	if *exec {
		// Mutations go over POST: the /v1 surface rejects a GET with
		// exec=1, and the frontend records the statement in its audit log.
		params.Set("exec", "1")
		err = client.Post("sql", params, &out)
	} else {
		err = client.Get("sql", params, &out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	fmt.Print(out.Result)
}

// queryDump restores a database dump (see clusterdb.Dump) and runs the
// query against it — post-mortem analysis of a dead frontend's backup.
func queryDump(path, sql string, exec bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	db := clusterdb.New()
	if err := clusterdb.Restore(db, string(data)); err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	var res *clusterdb.Result
	if exec {
		res, err = db.Exec(sql)
	} else {
		res, err = db.Query(sql)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rocksql:", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}

// shoot-node instructs compute nodes to reboot into installation mode over
// Ethernet (§6.3). With -watch it attaches to the first node's eKV port and
// streams the Red Hat installation screen — the xterm the paper pops open.
//
// With -timeline it prints each node's lifecycle timeline from the
// frontend's event bus after shooting — discover through install, up, dark,
// power cycles — so the administrator sees what the machine has been
// through.
//
//	shoot-node -server http://127.0.0.1:8070 compute-0-0 compute-0-1
//	shoot-node -server http://127.0.0.1:8070 -watch compute-0-0
//	shoot-node -server http://127.0.0.1:8070 -timeline compute-0-0
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"

	"rocks/internal/apiclient"
	"rocks/internal/ekv"
	"rocks/internal/lifecycle"
)

func main() {
	var (
		server   = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		watch    = flag.Bool("watch", false, "attach to the first node's eKV screen")
		timeline = flag.Bool("timeline", false, "print each node's lifecycle timeline after shooting")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: shoot-node [-server URL] [-watch] [-timeline] node...")
		os.Exit(2)
	}
	params := url.Values{}
	for _, n := range flag.Args() {
		params.Add("node", n)
	}
	if *watch {
		params.Set("watch", "1")
	}
	var out map[string]string
	if err := apiclient.New(*server).Post("shoot", params, &out); err != nil {
		fmt.Fprintln(os.Stderr, "shoot-node:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", strings.Join(flag.Args(), ", "), out["status"])

	if *watch {
		addr := out["ekv"]
		if addr == "" {
			fmt.Fprintln(os.Stderr, "shoot-node: node exposed no eKV port")
			os.Exit(1)
		}
		watchScreen(addr)
	}

	if *timeline {
		for _, n := range flag.Args() {
			tr, err := lifecycle.FetchTimeline(*server, n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "shoot-node:", err)
				os.Exit(1)
			}
			fmt.Printf("\n== %s lifecycle (%d events, %d dropped) ==\n", n, len(tr.Events), tr.Dropped)
			os.Stdout.WriteString(lifecycle.FormatTimeline(tr.Events))
		}
	}
}

// watchScreen attaches to a node's eKV port and streams the installation
// screen until the install completes or the connection drops (the node
// rebooting closes the port).
func watchScreen(addr string) {
	client, err := ekv.Attach(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shoot-node:", err)
		os.Exit(1)
	}
	defer client.Close()
	seen := 0
	for {
		s := client.Screen()
		if len(s) > seen {
			os.Stdout.WriteString(s[seen:])
			seen = len(s)
		}
		if strings.Contains(s, "installation complete") {
			return
		}
		select {
		case <-client.Done():
			if rest := client.Screen(); len(rest) > seen {
				os.Stdout.WriteString(rest[seen:])
			}
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

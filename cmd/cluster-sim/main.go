// cluster-sim boots a complete simulated Rocks cluster — frontend services,
// kickstart CGI, distribution server, DHCP, NIS, NFS, PBS — integrates
// compute nodes, and either serves its admin API for the other cmd/ tools
// (live mode) or regenerates the paper's quantitative results (-experiment).
//
// Live mode:
//
//	cluster-sim -listen 127.0.0.1:8070 -nodes 4
//	    ... then, from other shells:
//	rocksql      -server http://127.0.0.1:8070 "select * from nodes"
//	cluster-fork -server http://127.0.0.1:8070 -cmd "rpm -q glibc"
//	shoot-node   -server http://127.0.0.1:8070 -watch compute-0-0
//
// Experiment mode:
//
//	cluster-sim -experiment table1      # Table I reproduction
//	cluster-sim -experiment microbench  # §6.3 serial-download micro-benchmark
//	cluster-sim -experiment gige        # Gigabit scaling footnote
//	cluster-sim -experiment servers     # replicated web servers
//	cluster-sim -experiment myrinet     # GM rebuild penalty
//	cluster-sim -experiment updates     # §6.2.1 update-tracking cadence
//	cluster-sim -experiment relaycurve  # peer/relay vs frontend-only completion curves
//	cluster-sim -experiment federation  # sharded frontends vs one frontend
//	cluster-sim -experiment all
//
// Federation mode — a two-level frontend hierarchy on one machine:
//
//	cluster-sim -listen 127.0.0.1:8090 -nodes 0                                      # parent
//	cluster-sim -listen 127.0.0.1:8091 -parent http://127.0.0.1:8090 -shard deptA:0-3
//	cluster-sim -listen 127.0.0.1:8092 -parent http://127.0.0.1:8090 -shard deptB:4-7
//
// Each child is a full frontend for its rack range; the parent's /v1/nodes,
// /v1/events, and /metrics merge every shard with per-shard provenance.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rocks/internal/clusterdb"
	"rocks/internal/core"
	"rocks/internal/dist"
	"rocks/internal/experiments"
	"rocks/internal/faults"
	"rocks/internal/federation"
	"rocks/internal/hardware"
	"rocks/internal/kickstart"
	"rocks/internal/lifecycle"
	"rocks/internal/mpirun"
	"rocks/internal/rexec"
	"rocks/internal/rpm"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "frontend HTTP listen address")
		nodes      = flag.Int("nodes", 2, "compute nodes to integrate at startup")
		name       = flag.String("name", "Meteor", "cluster name")
		experiment = flag.String("experiment", "", "run an experiment instead of live mode: table1|microbench|gige|servers|myrinet|updates|relaycurve|federation|all")
		parent     = flag.String("parent", "", "run as a child frontend: parent frontend base URL to register with")
		shard      = flag.String("shard", "", "shard this child owns, as name or name:rack or name:lo-hi (requires -parent)")
		relays     = flag.Bool("relays", false, "enable the peer relay distribution tier (completed nodes re-serve packages)")
		demo       = flag.Bool("demo", false, "run the scripted management demo and exit")
		dbdir      = flag.String("dbdir", "", "durable cluster database directory (WAL + snapshots); empty keeps the database in memory")
		dbfsync    = flag.Bool("dbfsync", false, "fsync every WAL record before its statement applies (requires -dbdir)")
		drift      = flag.Int("drift", 0, "inject deterministic hardware-facts drift into the first N first-boot reports (chaos mode: the supervisor reinstalls the drifted nodes until reports come back clean)")
	)
	flag.Parse()

	if *experiment != "" {
		runExperiments(*experiment)
		return
	}

	cfg := core.Config{Name: *name, ListenAddr: *listen, DHCPRetry: 5 * time.Millisecond,
		DBDir: *dbdir, DBFsync: *dbfsync, EnableRelays: *relays}
	if *drift > 0 {
		// Seeded injector, one count-capped rule: the first N facts reports
		// are skewed (wrong arch + halved disk, plus a within-tolerance
		// memory wobble the comparator must classify as benign). Each
		// skewed report costs the node a supervisor-ordered reinstall;
		// the rule's budget exhausts and the loop converges to zero
		// actionable drift.
		cfg.Faults = faults.NewInjector(1, faults.Rule{
			Op: faults.OpFactsReport, Mode: faults.ModeFactsSkew, Count: *drift,
		})
	}
	rack := 0
	if *shard != "" {
		if *parent == "" {
			fmt.Fprintln(os.Stderr, "cluster-sim: -shard requires -parent")
			os.Exit(2)
		}
		sh, err := federation.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cluster-sim:", err)
			os.Exit(2)
		}
		cfg.Shard = sh
		if *name == "Meteor" { // untouched default: name the child after its shard
			cfg.Name = sh.Name
		}
		rack = sh.RackLo
	}
	cfg.Parent = *parent

	c, err := core.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster-sim:", err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("frontend up: %s\n", c.BaseURL())
	if *parent != "" {
		fmt.Printf("role: child frontend, shard %q (racks %d..%d), registered with %s\n",
			cfg.Shard.Name, cfg.Shard.RackLo, cfg.Shard.RackHi, *parent)
	} else {
		fmt.Println("role: standalone frontend (becomes parent when children register at /v1/federation/register)")
	}
	if ri := c.Recovery(); ri != nil {
		fmt.Printf("cluster database recovered from %s: %s\n", *dbdir, ri)
	}
	fmt.Print(c.Dist.Report.Summary())

	if *nodes > 0 {
		fmt.Printf("integrating %d compute nodes (insert-ethers, sequential boot)...\n", *nodes)
		profiles := make([]hardware.Profile, *nodes)
		for i := range profiles {
			profiles[i] = hardware.PIIICompute(c.MACs(), 733)
		}
		if _, err := c.IntegrateNodes(profiles, clusterdb.MembershipCompute, rack, 2*time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, "cluster-sim:", err)
			os.Exit(1)
		}
	}
	fmt.Println(c.StatusTable())

	if *drift > 0 {
		// Close the loop: the supervisor watches /v1/facts drift verdicts
		// and reinstalls drifted nodes on a fast cadence so a smoke test
		// sees convergence in seconds.
		c.StartSupervisor(core.SupervisorConfig{
			Patience:    2 * time.Second,
			Interval:    100 * time.Millisecond,
			BaseBackoff: 200 * time.Millisecond,
			MaxRetries:  5,
		})
		fmt.Printf("drift chaos: first %d facts reports skewed; supervisor remediation running\n", *drift)
	}

	if *demo {
		if err := runDemo(c); err != nil {
			fmt.Fprintln(os.Stderr, "cluster-sim demo:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("control plane ready: /v1/* (versioned API), /metrics (scrape), /v1/audit (mutation log); ^C to stop")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

// runDemo walks the paper's management story end to end on the live
// cluster.
func runDemo(c *core.Cluster) error {
	fmt.Println("== Table II: the nodes table ==")
	nodesReport, err := clusterdb.NodesTableReport(c.DB)
	if err != nil {
		return err
	}
	fmt.Print(nodesReport)

	fmt.Println("\n== cluster-kill via a multi-table join (§6.4) ==")
	for _, s := range c.Status() {
		if n, ok := c.NodeByName(s.Name); ok && s.Name != "frontend-0" {
			n.StartProcess("bad-job")
		}
	}
	query := `select nodes.name from nodes,memberships where ` +
		`nodes.membership = memberships.id and memberships.name = 'Compute'`
	_, killed, err := c.Kill(query, "bad-job")
	if err != nil {
		return err
	}
	fmt.Printf("killed %d runaway processes on compute nodes\n", killed)

	fmt.Println("\n== shoot-node with eKV (§6.3) ==")
	names := []string{}
	for _, s := range c.Status() {
		if s.Name != "frontend-0" {
			names = append(names, s.Name)
		}
	}
	if len(names) > 0 {
		client, err := c.ShootNodeWatch(names[0], time.Minute)
		if err != nil {
			return err
		}
		defer client.Close()
		if client.WaitFor("installation complete", time.Minute) {
			fmt.Printf("%s reinstalled; eKV transcript: %d bytes\n", names[0], len(client.Screen()))
		}
		n, _ := c.NodeByName(names[0])
		for i := 0; i < 5000 && n.State() != "up"; i++ {
			time.Sleep(2 * time.Millisecond)
		}
	}

	fmt.Println("\n== consistency after reinstall (§3.2) ==")
	ref, divergent, err := c.ConsistencyReport()
	if err != nil {
		return err
	}
	fmt.Printf("reference node %s; %d divergent nodes\n", ref, len(divergent))

	fmt.Println("\n== mpirun over REXEC (§4.1) ==")
	rows, err := clusterdb.Nodes(c.DB, "membership = 2")
	if err != nil {
		return err
	}
	var hosts []mpirun.Host
	for _, r := range rows {
		if n, ok := c.NodeByName(r.Name); ok {
			hosts = append(hosts, mpirun.Host{Name: r.Name, Slots: r.CPUs, Exec: n})
		}
	}
	if len(hosts) > 0 {
		job, err := mpirun.Launch("cpi", len(hosts), hosts)
		if err != nil {
			return err
		}
		job.Run(rexec.Request{Command: "hostname"})
		fmt.Print(job.TaggedOutput())
		job.Kill()
	}

	fmt.Println("\n== health monitor (§4) ==")
	mon := c.NewMonitor(time.Second, 0)
	defer mon.Stop()
	mon.Probe()
	fmt.Print(mon.Report())

	fmt.Println("\n== node lifecycle timeline (/admin/events) ==")
	if len(names) > 0 {
		fmt.Printf("%s:\n", names[0])
		fmt.Print(lifecycle.FormatTimeline(c.NodeTimeline(names[0])))
	}

	fmt.Println("\n" + c.StatusTable())
	return nil
}

func runExperiments(which string) {
	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println("== Table I: reinstallation performance ==")
			fmt.Print(experiments.FormatTableI(experiments.RunTableI()))
		case "microbench":
			fmt.Println("== §6.3 micro-benchmark: serial RPM download ==")
			got := experiments.SerialDownloadMBps(experiments.DefaultParams(1))
			fmt.Printf("web server sourced %.1f MB/s (paper: 7-8 MB/s)\n", got)
		case "gige":
			fmt.Println("== §6.3: Gigabit Ethernet scaling ==")
			fe := experiments.DefaultParams(1)
			fe.ServerMBps = 7.0
			feN := experiments.MaxFullSpeedReinstalls(fe, 0.02, 20)
			ge := fe
			ge.ServerMBps = 7.0 * 8.5
			geN := experiments.MaxFullSpeedReinstalls(ge, 0.02, 100)
			fmt.Printf("Fast Ethernet: %d concurrent full-speed reinstalls\n", feN)
			fmt.Printf("Gigabit:       %d concurrent (%.1fx; paper: 7.0-9.5x)\n", geN, float64(geN)/float64(feN))
		case "servers":
			fmt.Println("== §6.3: replicated installation servers ==")
			for _, servers := range []int{1, 2, 4} {
				p := experiments.DefaultParams(32)
				p.Servers = servers
				r := experiments.RunReinstall(p)
				fmt.Printf("32 nodes on %d server(s): %.1f minutes\n", servers, r.TotalMinutes())
			}
		case "myrinet":
			fmt.Println("== §6.3: Myrinet driver rebuild penalty ==")
			with := experiments.RunReinstall(experiments.DefaultParams(1)).TotalSecs
			p := experiments.DefaultParams(1)
			p.WithMyrinet = false
			without := experiments.RunReinstall(p).TotalSecs
			fmt.Printf("with rebuild: %.0f s, without: %.0f s, penalty %.0f%% (paper: 20-30%%)\n",
				with, without, (with-without)/without*100)
		case "updates":
			fmt.Println("== §6.2.1: update tracking (124 updates in a year) ==")
			base := dist.SyntheticRedHat()
			updates := dist.GenerateUpdates(base, 124, 1)
			d := dist.Build("updated", kickstart.DefaultFramework(),
				dist.Source{Name: "base", Repo: base},
				dist.Source{Name: "updates", Repo: updates})
			fmt.Print(d.Report.Summary())
			fmt.Printf("one update every %.1f days on average\n", 365.0/124)
			// Spot-check: every update beat its base version.
			stale := 0
			for _, up := range updates.All() {
				cur := d.Repo.Newest(up.Name, up.Arch)
				if cur == nil || rpm.Compare(cur.Version, up.Version) < 0 {
					stale++
				}
			}
			fmt.Printf("%d stale packages after rebuild (want 0)\n", stale)
		case "relaycurve":
			fmt.Println("== peer/relay distribution: install completion curves ==")
			rows := []experiments.CurveComparison{}
			for _, n := range []int{32, 1000, 10000} {
				rows = append(rows, experiments.RunCurveComparison(n))
			}
			fmt.Print(experiments.FormatCurves(rows))
		case "federation":
			fmt.Println("== federated frontends: sharded hierarchy vs one frontend ==")
			rows := []experiments.FederationComparison{}
			for _, relay := range []bool{false, true} {
				rows = append(rows, experiments.RunFederationComparison(10000, 8, relay))
			}
			fmt.Print(experiments.FormatFederationCurves(rows))
			fmt.Println("(full mirror = cold cascade of the whole tree to every child;")
			fmt.Println(" delta mirror = unchanged tree, the cascade moves zero package bodies)")
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}
	if which == "all" {
		for _, n := range []string{"table1", "microbench", "gige", "servers", "myrinet", "updates", "relaycurve", "federation"} {
			run(n)
		}
		return
	}
	run(which)
}

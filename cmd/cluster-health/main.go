// cluster-health probes every node over the management Ethernet and
// reports which are reachable — closing §4's "in the dark" loop: a dark
// node is either a hardware fault or a common-mode service casualty, and
// the report names the PDU outlet to hard-cycle.
//
// With -metrics it scrapes the frontend's /metrics surface instead and
// prints the exposition; -require asserts that named metric families are
// present (CI's smoke check that instrumentation never silently
// disappears). The scrape is parsed strictly — an exposition that does not
// round-trip is itself a failure.
//
//	cluster-health -server http://127.0.0.1:8070
//	cluster-health -server http://127.0.0.1:8070 -metrics
//	cluster-health -metrics -quiet -require rocks_nodes,rocks_db_wal_fsyncs_total
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"rocks/internal/apiclient"
	"rocks/internal/metrics"
)

func main() {
	var (
		server  = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		scrape  = flag.Bool("metrics", false, "scrape /metrics instead of probing node health")
		require = flag.String("require", "", "comma-separated metric families that must be present (implies -metrics)")
		quiet   = flag.Bool("quiet", false, "with -metrics: suppress the exposition, only report problems")
	)
	flag.Parse()

	if *scrape || *require != "" {
		os.Exit(runMetrics(*server, *require, *quiet))
	}
	os.Exit(runHealth(*server))
}

// runMetrics scrapes and strictly parses /metrics, then checks the
// required families.
func runMetrics(server, require string, quiet bool) int {
	resp, err := http.Get(strings.TrimSuffix(server, "/") + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster-health:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "cluster-health: /metrics: HTTP %d\n", resp.StatusCode)
		return 1
	}
	var text strings.Builder
	s, err := metrics.ParseText(io.TeeReader(resp.Body, &text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster-health: /metrics does not parse:", err)
		return 1
	}
	if !quiet {
		os.Stdout.WriteString(text.String())
	}
	missing := 0
	for _, fam := range strings.Split(require, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		if !s.Has(fam) {
			fmt.Fprintf(os.Stderr, "cluster-health: required metric family %s is absent\n", fam)
			missing++
		}
	}
	if missing > 0 {
		return 1
	}
	return 0
}

func runHealth(server string) int {
	var rows []struct {
		Host        string `json:"host"`
		Alive       bool   `json:"alive"`
		State       string `json:"state"`
		Outlet      int    `json:"outlet"`
		Quarantined bool   `json:"quarantined"`
	}
	if err := apiclient.New(server).Get("health", nil, &rows); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-health:", err)
		return 1
	}
	dark, quarantined := 0, 0
	fmt.Printf("%-16s %-8s %-12s %s\n", "HOST", "ALIVE", "STATE", "ACTION")
	for _, r := range rows {
		action := "-"
		switch {
		case r.Quarantined:
			// The supervisor already exhausted its retry budget here: the
			// node is offline in PBS and waiting for hands, not a cycle.
			quarantined++
			action = "quarantined (offline in PBS) — repair, then unquarantine"
		case !r.Alive:
			dark++
			if r.Outlet != 0 {
				action = fmt.Sprintf("hard-cycle PDU outlet %d", r.Outlet)
			} else {
				action = "crash cart"
			}
		}
		alive := "yes"
		if !r.Alive {
			alive = "NO"
		}
		fmt.Printf("%-16s %-8s %-12s %s\n", r.Host, alive, r.State, action)
	}
	if quarantined > 0 {
		fmt.Printf("%d node(s) quarantined\n", quarantined)
	}
	if dark > 0 {
		fmt.Printf("%d node(s) dark\n", dark)
		return 1
	}
	return 0
}

// cluster-health probes every node over the management Ethernet and
// reports which are reachable — closing §4's "in the dark" loop: a dark
// node is either a hardware fault or a common-mode service casualty, and
// the report names the PDU outlet to hard-cycle.
//
//	cluster-health -server http://127.0.0.1:8070
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
	flag.Parse()

	resp, err := http.Get(strings.TrimSuffix(*server, "/") + "/admin/health")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster-health:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "cluster-health: %s: %s", resp.Status, body)
		os.Exit(1)
	}
	var rows []struct {
		Host        string `json:"host"`
		Alive       bool   `json:"alive"`
		State       string `json:"state"`
		Outlet      int    `json:"outlet"`
		Quarantined bool   `json:"quarantined"`
	}
	if err := json.Unmarshal(body, &rows); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-health: bad response:", err)
		os.Exit(1)
	}
	dark, quarantined := 0, 0
	fmt.Printf("%-16s %-8s %-12s %s\n", "HOST", "ALIVE", "STATE", "ACTION")
	for _, r := range rows {
		action := "-"
		switch {
		case r.Quarantined:
			// The supervisor already exhausted its retry budget here: the
			// node is offline in PBS and waiting for hands, not a cycle.
			quarantined++
			action = "quarantined (offline in PBS) — repair, then unquarantine"
		case !r.Alive:
			dark++
			if r.Outlet != 0 {
				action = fmt.Sprintf("hard-cycle PDU outlet %d", r.Outlet)
			} else {
				action = "crash cart"
			}
		}
		alive := "yes"
		if !r.Alive {
			alive = "NO"
		}
		fmt.Printf("%-16s %-8s %-12s %s\n", r.Host, alive, r.State, action)
	}
	if quarantined > 0 {
		fmt.Printf("%d node(s) quarantined\n", quarantined)
	}
	if dark > 0 {
		fmt.Printf("%d node(s) dark\n", dark)
		os.Exit(1)
	}
}

// insert-ethers integrates new machines into a running cluster (§6.4): it
// asks the frontend to start a discovery session, power on the requested
// simulated hardware sequentially, and report the assigned names.
//
// With -timeline it follows up with each integrated node's lifecycle
// timeline from the frontend's event bus: discovery, DHCP lease, kickstart,
// package installation, and the moment it joined service.
//
//	insert-ethers -server http://127.0.0.1:8070 -count 4 -rack 0
//	insert-ethers -server http://127.0.0.1:8070 -count 1 -membership 2 -mhz 1000
//	insert-ethers -server http://127.0.0.1:8070 -count 1 -timeline
package main

import (
	"flag"
	"fmt"
	"net/url"
	"os"
	"strconv"

	"rocks/internal/apiclient"
	"rocks/internal/lifecycle"
)

func main() {
	var (
		server     = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		count      = flag.Int("count", 1, "number of machines to power on and integrate")
		rack       = flag.Int("rack", 0, "cabinet being populated")
		membership = flag.Int("membership", 2, "membership ID for the new nodes (2 = Compute)")
		mhz        = flag.Int("mhz", 733, "CPU speed of the simulated machines")
		wait       = flag.Int("wait", 120, "seconds to wait for all nodes to come up")
		timeline   = flag.Bool("timeline", false, "print each integrated node's lifecycle timeline")
	)
	flag.Parse()

	params := url.Values{
		"count":      {strconv.Itoa(*count)},
		"rack":       {strconv.Itoa(*rack)},
		"membership": {strconv.Itoa(*membership)},
		"mhz":        {strconv.Itoa(*mhz)},
		"wait":       {strconv.Itoa(*wait)},
	}
	var out map[string][]string
	if err := apiclient.New(*server).Post("integrate", params, &out); err != nil {
		fmt.Fprintln(os.Stderr, "insert-ethers:", err)
		os.Exit(1)
	}
	for _, name := range out["integrated"] {
		fmt.Printf("inserted %s\n", name)
	}
	if *timeline {
		for _, name := range out["integrated"] {
			tr, err := lifecycle.FetchTimeline(*server, name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "insert-ethers:", err)
				os.Exit(1)
			}
			fmt.Printf("\n== %s lifecycle (%d events) ==\n", name, len(tr.Events))
			os.Stdout.WriteString(lifecycle.FormatTimeline(tr.Events))
		}
	}
}

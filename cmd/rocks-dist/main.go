// rocks-dist builds and serves cluster distributions (§6.2). A distribution
// is gathered from multiple sources — on-disk trees, HTTP mirrors of a
// parent distribution, and the built-in synthetic Red Hat — with only the
// newest version of each package surviving (Figure 5). Trees compose
// hierarchically: a campus mirrors NPACI and adds local RPMs; departments
// mirror the campus (Figure 6).
//
//	rocks-dist synth -out ./mirror                 # materialize the stock mirror
//	rocks-dist build -out ./dist -src ./mirror,./updates,./local
//	rocks-dist build -out ./campus -mirror http://host:8080 -src ./campus-rpms
//	rocks-dist build -out ./campus -mirror http://host:8080 -delta   # re-fetch only changed digests
//	rocks-dist serve -dir ./dist -addr 127.0.0.1:8080 -verify
//	rocks-dist list  -dir ./dist -verify
//	rocks-dist verify -dir ./dist                  # audit the tree against its MANIFEST
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"rocks/internal/dist"
	"rocks/internal/kickstart"
	"rocks/internal/rpm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "synth":
		cmdSynth(os.Args[2:])
	case "build":
		cmdBuild(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rocks-dist {synth|build|serve|list|verify} [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "rocks-dist:", err)
	os.Exit(1)
}

func cmdSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	out := fs.String("out", "mirror", "output directory")
	fs.Parse(args)
	repo := dist.SyntheticRedHat()
	n, err := dist.WriteTree(repo, *out)
	if err != nil {
		die(err)
	}
	fmt.Printf("wrote %d packages (%d bytes nominal) to %s\n", n, repo.TotalSize(), *out)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("out", "dist", "output directory")
	name := fs.String("name", "rocks", "distribution name")
	srcs := fs.String("src", "", "comma-separated source trees, in precedence order")
	mirrors := fs.String("mirror", "", "comma-separated parent distribution URLs to replicate first")
	profiles := fs.String("profiles", "", "site profiles directory (nodes/*.xml, graphs/*.xml) layered over the defaults")
	workers := fs.Int("mirror-workers", 8, "concurrent package fetches per mirrored parent")
	retries := fs.Int("mirror-retries", 3, "fetch attempts per package before the replication pass fails")
	delta := fs.Bool("delta", false, "delta mirror: reuse packages already materialized in -out whose manifest digest is unchanged")
	fs.Parse(args)

	// Delta mode: the previous materialize of -out is the baseline; only
	// packages whose digest the parent's manifest says changed are fetched.
	var baseline *rpm.Repository
	if *delta {
		prev, err := dist.ReadTree(*out, "baseline")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rocks-dist: no usable baseline in %s (%v); running a full mirror\n", *out, err)
		} else {
			baseline = prev
		}
	}
	var sources []dist.Source
	for _, u := range splitList(*mirrors) {
		repo, report, err := dist.MirrorReportWith(u, "mirror:"+u,
			dist.MirrorOptions{Workers: *workers, Retries: *retries, Baseline: baseline})
		if err != nil {
			die(err)
		}
		sources = append(sources, dist.Source{Name: repo.Name(), Repo: repo})
		fmt.Printf("mirrored %d packages from %s\n%s\n", repo.Len(), u, report.Summary())
	}
	for _, d := range splitList(*srcs) {
		repo, err := dist.ReadTree(d, filepath.Base(d))
		if err != nil {
			die(err)
		}
		sources = append(sources, dist.Source{Name: repo.Name(), Repo: repo})
	}
	if len(sources) == 0 {
		die(fmt.Errorf("no sources: pass -src and/or -mirror"))
	}
	fw := kickstart.DefaultFramework()
	if *profiles != "" {
		site, err := kickstart.LoadFS(os.DirFS(*profiles))
		if err != nil {
			die(err)
		}
		for _, nf := range site.Nodes {
			fw.AddNode(nf)
		}
		fw.Graph.Merge(site.Graph)
	}
	d := dist.Build(*name, fw, sources...)
	fmt.Print(d.Report.Summary())
	n, err := dist.Materialize(d, *out)
	if err != nil {
		die(err)
	}
	fmt.Printf("wrote %d packages and the profiles build directory to %s\n", n, *out)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "dist", "distribution tree to serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	verify := fs.Bool("verify", false, "audit the tree against its MANIFEST digests before serving")
	fs.Parse(args)
	if *verify {
		verifyOrDie(*dir)
	}
	repo, err := dist.ReadTree(*dir, filepath.Base(*dir))
	if err != nil {
		die(err)
	}
	fw := kickstart.DefaultFramework()
	if site, err := kickstart.LoadFS(os.DirFS(filepath.Join(*dir, "profiles"))); err == nil && len(site.Nodes) > 0 {
		fw = site
	}
	d := dist.Build(filepath.Base(*dir), fw,
		dist.Source{Name: repo.Name(), Repo: repo})
	fmt.Printf("serving %d packages from %s on http://%s\n", d.Repo.Len(), *dir, *addr)
	if err := http.ListenAndServe(*addr, dist.Handler(d)); err != nil {
		die(err)
	}
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := fs.String("dir", "dist", "distribution tree")
	verify := fs.Bool("verify", false, "audit the tree against its MANIFEST digests")
	fs.Parse(args)
	if *verify {
		verifyOrDie(*dir)
	}
	repo, err := dist.ReadTree(*dir, filepath.Base(*dir))
	if err != nil {
		die(err)
	}
	for _, p := range repo.All() {
		fmt.Printf("%-40s %10d  %s\n", p.NVRA(), p.Size, p.Summary)
	}
	fmt.Printf("%d packages, %d bytes nominal\n", repo.Len(), repo.TotalSize())
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "dist", "distribution tree")
	fs.Parse(args)
	verifyOrDie(*dir)
}

// verifyOrDie audits a tree against its MANIFEST and exits non-zero on any
// tampered, orphaned, or missing file — a corrupt tree must never be
// served or composed into a build.
func verifyOrDie(dir string) {
	v, err := dist.VerifyTree(dir)
	if err != nil {
		die(err)
	}
	fmt.Println(v.Summary())
	if !v.Clean() {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

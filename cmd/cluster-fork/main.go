// cluster-fork runs a command on the set of nodes an SQL query selects
// (§6.4). With -kill it becomes cluster-kill, terminating a named process
// on exactly the selected nodes — including via multi-table joins:
//
//	cluster-fork -server http://127.0.0.1:8070 -cmd "rpm -q glibc"
//	cluster-fork -server http://127.0.0.1:8070 \
//	    -query "select name from nodes where rack=1" -kill bad-job
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/url"
	"os"
	"strings"

	"rocks/internal/apiclient"
	"rocks/internal/ctools"
)

type forkResponse struct {
	Results []struct {
		Host   string `json:"host"`
		Output string `json:"output"`
		Error  string `json:"error"`
	} `json:"results"`
	Killed int `json:"killed"`
}

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:8070", "frontend admin URL")
		query  = flag.String("query", "", "SQL selecting target hostnames (default: all compute nodes)")
		cmd    = flag.String("cmd", "", "command to run on each selected node")
		kill   = flag.String("kill", "", "process name to kill instead of running a command")
		group  = flag.Bool("group", false, "collapse identical outputs across hosts")
	)
	flag.Parse()
	if (*cmd == "") == (*kill == "") {
		fmt.Fprintln(os.Stderr, "usage: cluster-fork [-server URL] [-query SQL] (-cmd CMD | -kill PROC)")
		os.Exit(2)
	}

	endpoint := "fork"
	params := url.Values{}
	if *query != "" {
		params.Set("query", *query)
	}
	if *kill != "" {
		endpoint = "kill"
		params.Set("process", *kill)
	} else {
		params.Set("cmd", *cmd)
	}
	var fr forkResponse
	if err := apiclient.New(*server).Post(endpoint, params, &fr); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-fork:", err)
		os.Exit(1)
	}
	if *group {
		var results []ctools.HostResult
		exit := 0
		for _, r := range fr.Results {
			hr := ctools.HostResult{Host: r.Host, Output: r.Output}
			if r.Error != "" {
				hr.Err = errors.New(r.Error)
				exit = 1
			}
			results = append(results, hr)
		}
		fmt.Print(ctools.GroupFormat(results))
		if *kill != "" {
			fmt.Printf("killed %d process(es)\n", fr.Killed)
		}
		os.Exit(exit)
	}
	exit := 0
	for _, r := range fr.Results {
		if r.Error != "" {
			fmt.Printf("%s: ERROR: %s\n", r.Host, r.Error)
			exit = 1
			continue
		}
		out := strings.TrimRight(r.Output, "\n")
		if out == "" {
			fmt.Printf("%s:\n", r.Host)
			continue
		}
		for _, line := range strings.Split(out, "\n") {
			fmt.Printf("%s: %s\n", r.Host, line)
		}
	}
	if *kill != "" {
		fmt.Printf("killed %d process(es)\n", fr.Killed)
	}
	os.Exit(exit)
}
